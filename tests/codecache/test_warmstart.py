"""Warm-start integration: controller wiring and the cold-vs-warm win."""

import pytest

from repro.codecache import CodeCache, CodeCacheConfig
from repro.experiments.measure import run_once
from repro.experiments.warmstart import cold_vs_warm, save_result
from repro.jit.control import ControlConfig
from repro.workloads import specjvm_program


@pytest.fixture(scope="module")
def program():
    return specjvm_program("compress", master_seed=0)


def make_cache(tmp_path, **overrides):
    return CodeCache(CodeCacheConfig(
        enabled=True, directory=str(tmp_path / "cc"), **overrides))


class TestControllerIntegration:
    def test_cold_run_is_cycle_identical_to_uncached(self, tmp_path,
                                                     program):
        """Probing an empty cache is free in virtual time: the default
        (disabled) configuration and a cold cache produce the same
        cycle counts, so enabling the cache never perturbs the
        experiments it does not help."""
        baseline = run_once(program)
        cold = run_once(program, code_cache=make_cache(tmp_path))
        assert cold.result_value == baseline.result_value
        assert cold.total_cycles == baseline.total_cycles
        assert cold.compile_cycles == baseline.compile_cycles
        assert cold.compilations == baseline.compilations
        assert baseline.cache_stats is None
        assert cold.cache_stats["hits"] == 0
        assert cold.cache_stats["stores"] == cold.compilations

    def test_warm_run_hits_and_charges_relocation(self, tmp_path,
                                                  program):
        config = ControlConfig(relocation_cycles=700)
        cold = run_once(program, control_config=config,
                        code_cache=make_cache(tmp_path))
        warm = run_once(program, control_config=config,
                        code_cache=make_cache(tmp_path))
        assert warm.result_value == cold.result_value
        stats = warm.cache_stats
        assert stats["hits"] > 0
        assert stats["cycles_saved"] > 0
        # Every hit was charged exactly the relocation cost.
        assert warm.compile_cycles < cold.compile_cycles

    def test_read_only_cache_never_writes(self, tmp_path, program):
        run_once(program, code_cache=make_cache(tmp_path))
        ro = make_cache(tmp_path, read_only=True)
        size_before = ro.total_bytes()
        result = run_once(program, code_cache=ro)
        assert result.cache_stats["hits"] > 0
        assert result.cache_stats["stores"] == 0
        assert make_cache(tmp_path,
                          read_only=True).total_bytes() == size_before


class TestColdVsWarm:
    def test_warm_start_wins(self, tmp_path, program):
        """The acceptance bar: a warm second run spends >= 50% fewer
        JIT compilation cycles and starts up measurably faster."""
        result = cold_vs_warm(program, str(tmp_path / "cc"))
        assert result.warm.result_value == result.cold.result_value
        assert result.compile_cycle_reduction >= 0.5
        assert result.startup_speedup > 1.0
        assert result.warm.cache_stats["hits"] > 0
        assert result.cold.cache_stats["stores"] > 0

    def test_render_and_save(self, tmp_path, program):
        result = cold_vs_warm(program, str(tmp_path / "cc"))
        text = result.render()
        assert "compress" in text
        assert "start-up speedup" in text
        assert "compile-cycle reduction" in text
        path = save_result(result, str(tmp_path / "evalcache"))
        with open(path, encoding="utf-8") as fh:
            assert fh.read().strip() == text.strip()

    def test_report_collects_warmstart_section(self, tmp_path, program):
        from repro.experiments.report import build_report
        result = cold_vs_warm(program, str(tmp_path / "cc"))
        save_result(result, str(tmp_path / "evalcache"))
        report = build_report(str(tmp_path / "evalcache"))
        assert "warmstart_compress" in report
        assert "start-up speedup" in report


class TestWarmPlusProfiles:
    def test_third_column_beats_the_plain_warm_baseline(self, tmp_path,
                                                        program):
        """The PR acceptance bar: on compress, the tiering +
        profile-seeding policy starts up at least as fast as the
        plain (PR-1) warm policy, which itself held >= 1.18x."""
        result = cold_vs_warm(program, str(tmp_path / "cc"))
        assert result.warm_profiles is not None
        assert result.warm_profiles.result_value == \
            result.cold.result_value
        assert result.startup_speedup >= 1.17
        assert result.profile_startup_speedup >= result.startup_speedup
        assert result.profile_startup_speedup >= 1.18
        stats = result.warm_profiles.cache_stats
        assert stats["hits"] > 0
        assert stats["tier_skips"] > 0
        assert result.warm_profiles.compile_cycles <= \
            result.warm.compile_cycles

    def test_profiles_false_keeps_the_pr1_pair(self, tmp_path, program):
        result = cold_vs_warm(program, str(tmp_path / "cc"),
                              profiles=False)
        assert result.warm_profiles is None
        assert result.profile_startup_speedup is None
        text = result.render()
        assert "warm+prof" not in text
        # And the cold run stored no profile sections.
        assert result.cold.cache_stats["profile_stores"] == 0

    def test_render_has_three_columns(self, tmp_path, program):
        result = cold_vs_warm(program, str(tmp_path / "cc"))
        text = result.render()
        assert "warm+prof" in text
        assert "tier skips" in text
        assert "speedup (cold/warm+profiles)" in text
