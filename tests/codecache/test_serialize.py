"""Round-trip properties of the persisted-code format.

The cache's keystone guarantee: a deserialized body is *execution-
equivalent* and *cycle-identical* to the original -- same return value
(or guest exception), same virtual-clock cost -- for randomly generated
methods at every optimization level under arbitrary plan modifiers.
Mirrors the interpreter-equivalence property of
``tests/jit/test_equivalence.py``, whose generator setup it reuses.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codecache import (
    FORMAT_VERSION,
    describe_blob,
    deserialize_compiled,
    serialize_compiled,
)
from repro.errors import CodeCacheError
from repro.jit.compiler import JitCompiler
from repro.jit.modifiers import Modifier, random_modifiers
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import JType
from repro.jvm.vm import VirtualMachine
from repro.workloads.generator import generate_program
from repro.workloads.profiles import WorkloadProfile


def small_profile(seed):
    return WorkloadProfile(
        name=f"cc{seed}", n_methods=6, loop_weight=0.7,
        heavy_loop_weight=0.3, fp_weight=0.4, alloc_weight=0.4,
        array_weight=0.5, exception_weight=0.3, decimal_weight=0.2,
        unsafe_weight=0.1, sync_weight=0.2, call_weight=0.5,
        loop_iters=6, heavy_loop_iters=20, phase_calls=3,
        sweep_repeats=1)


def build_vm(seed):
    rng = np.random.default_rng(seed)
    program = generate_program(small_profile(seed), rng)
    vm = VirtualMachine()
    vm.load_program(program)
    return vm, program


def args_for(method, arg_seed):
    rng = np.random.default_rng(arg_seed)
    out = []
    for ptype in method.param_types:
        if ptype is JType.DOUBLE:
            out.append((round(float(rng.uniform(-3, 9)), 3),
                        JType.DOUBLE))
        else:
            out.append((int(rng.integers(-5, 40)), JType.INT))
    return out


def outcome_of(compiled, vm, args):
    try:
        return compiled.execute(vm, list(args))
    except Exception as exc:  # guest exception escaping is a valid outcome
        return ("raised", type(exc).__name__, str(exc))


def same_outcome(a, b):
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            same_outcome(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def check_round_trip(seed, level, modifier, arg_seed=1):
    vm, program = build_vm(seed)
    compiler = JitCompiler(method_resolver=vm._methods.get,
                           debug_check=True)
    for method in program.methods():
        compiled = compiler.compile(method, level, modifier=modifier)
        blob = serialize_compiled(compiled)
        restored = deserialize_compiled(blob, method)

        args = args_for(method, arg_seed)
        vm_a, _ = build_vm(seed)
        vm_b, _ = build_vm(seed)
        expected = outcome_of(compiled, vm_a, args)
        actual = outcome_of(restored, vm_b, args)
        assert same_outcome(actual, expected), (
            f"{method.signature} at {level.name}: "
            f"{actual!r} != {expected!r}")
        # Cycle-identical: the restored body charges exactly the same
        # virtual time as the original.
        assert vm_a.clock.now() == vm_b.clock.now(), (
            f"{method.signature} at {level.name}: cycle drift "
            f"{vm_a.clock.now()} != {vm_b.clock.now()}")
        # Bit-stable: re-serializing yields the same bytes.
        assert serialize_compiled(restored) == blob
        # Provenance survives.
        assert restored.level is level
        assert restored.modifier == modifier
        assert restored.compile_cycles == compiled.compile_cycles
        assert np.array_equal(restored.features, compiled.features)
        assert tuple(restored.pass_log) == tuple(
            (str(n), bool(c)) for n, c in compiled.pass_log)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_round_trip_hot_null_modifier(seed):
    check_round_trip(seed, OptLevel.HOT, Modifier.null())


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000),
       level=st.sampled_from(list(OptLevel)),
       mod_seed=st.integers(0, 100))
def test_round_trip_all_levels_random_modifiers(seed, level, mod_seed):
    rng = np.random.default_rng(mod_seed)
    modifier = random_modifiers(rng, 1)[0]
    check_round_trip(seed, level, modifier)


class TestBlobValidation:
    def _blob(self, seed=7, level=OptLevel.WARM):
        vm, program = build_vm(seed)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        method = program.methods()[0]
        compiled = compiler.compile(method, level)
        return serialize_compiled(compiled), method, compiled

    def test_describe_blob(self):
        blob, _method, compiled = self._blob()
        meta = describe_blob(blob)
        assert meta["signature"] == compiled.method.signature
        assert meta["level"] is OptLevel.WARM
        assert meta["compile_cycles"] == compiled.compile_cycles
        assert meta["instructions"] == len(compiled.native.instrs)

    def test_truncated_blob_rejected(self):
        blob, method, _ = self._blob()
        for cut in (0, 3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CodeCacheError):
                deserialize_compiled(blob[:cut], method)

    def test_bit_flip_rejected_by_crc(self):
        blob, method, _ = self._blob()
        for pos in (7, len(blob) // 2, len(blob) - 6):
            corrupt = bytearray(blob)
            corrupt[pos] ^= 0x40
            with pytest.raises(CodeCacheError):
                deserialize_compiled(bytes(corrupt), method)

    def test_bad_magic_and_version_rejected(self):
        blob, method, _ = self._blob()
        with pytest.raises(CodeCacheError, match="magic"):
            deserialize_compiled(b"XXXX" + blob[4:], method)
        assert FORMAT_VERSION == 1
        versioned = bytearray(blob)
        versioned[4] = 99  # u16 version little-endian low byte
        with pytest.raises(CodeCacheError, match="version"):
            deserialize_compiled(bytes(versioned), method)

    def test_wrong_method_rejected(self):
        blob, _method, _ = self._blob(seed=7)
        _vm, other_program = build_vm(8)
        other = other_program.methods()[-1]
        with pytest.raises(CodeCacheError):
            deserialize_compiled(blob, other)
