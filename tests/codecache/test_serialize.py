"""Round-trip properties of the persisted-code format.

The cache's keystone guarantee: a deserialized body is *execution-
equivalent* and *cycle-identical* to the original -- same return value
(or guest exception), same virtual-clock cost -- for randomly generated
methods at every optimization level under arbitrary plan modifiers.
Mirrors the interpreter-equivalence property of
``tests/jit/test_equivalence.py``, whose generator setup it reuses.
"""

import math
import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codecache import (
    FORMAT_VERSION,
    decode_profile,
    describe_blob,
    deserialize_compiled,
    encode_profile,
    serialize_compiled,
)
from repro.codecache.serialize import (
    _CRC,
    _HEADER,
    _RAWLEN,
    COMPRESSION_LEVEL,
    MAGIC,
    _encode,
    _pack_payload,
    payload_sizes,
)
from repro.errors import CodeCacheError
from repro.jit.compiler import JitCompiler
from repro.jit.modifiers import Modifier, random_modifiers
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import JType
from repro.jvm.vm import VirtualMachine
from repro.workloads.generator import generate_program
from repro.workloads.profiles import WorkloadProfile


def small_profile(seed):
    return WorkloadProfile(
        name=f"cc{seed}", n_methods=6, loop_weight=0.7,
        heavy_loop_weight=0.3, fp_weight=0.4, alloc_weight=0.4,
        array_weight=0.5, exception_weight=0.3, decimal_weight=0.2,
        unsafe_weight=0.1, sync_weight=0.2, call_weight=0.5,
        loop_iters=6, heavy_loop_iters=20, phase_calls=3,
        sweep_repeats=1)


def build_vm(seed):
    rng = np.random.default_rng(seed)
    program = generate_program(small_profile(seed), rng)
    vm = VirtualMachine()
    vm.load_program(program)
    return vm, program


def args_for(method, arg_seed):
    rng = np.random.default_rng(arg_seed)
    out = []
    for ptype in method.param_types:
        if ptype is JType.DOUBLE:
            out.append((round(float(rng.uniform(-3, 9)), 3),
                        JType.DOUBLE))
        else:
            out.append((int(rng.integers(-5, 40)), JType.INT))
    return out


def outcome_of(compiled, vm, args):
    try:
        return compiled.execute(vm, list(args))
    except Exception as exc:  # guest exception escaping is a valid outcome
        return ("raised", type(exc).__name__, str(exc))


def same_outcome(a, b):
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            same_outcome(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def check_round_trip(seed, level, modifier, arg_seed=1):
    vm, program = build_vm(seed)
    compiler = JitCompiler(method_resolver=vm._methods.get,
                           debug_check=True)
    for method in program.methods():
        compiled = compiler.compile(method, level, modifier=modifier)
        blob = serialize_compiled(compiled)
        restored = deserialize_compiled(blob, method)

        args = args_for(method, arg_seed)
        vm_a, _ = build_vm(seed)
        vm_b, _ = build_vm(seed)
        expected = outcome_of(compiled, vm_a, args)
        actual = outcome_of(restored, vm_b, args)
        assert same_outcome(actual, expected), (
            f"{method.signature} at {level.name}: "
            f"{actual!r} != {expected!r}")
        # Cycle-identical: the restored body charges exactly the same
        # virtual time as the original.
        assert vm_a.clock.now() == vm_b.clock.now(), (
            f"{method.signature} at {level.name}: cycle drift "
            f"{vm_a.clock.now()} != {vm_b.clock.now()}")
        # Bit-stable: re-serializing yields the same bytes.
        assert serialize_compiled(restored) == blob
        # Provenance survives.
        assert restored.level is level
        assert restored.modifier == modifier
        assert restored.compile_cycles == compiled.compile_cycles
        assert np.array_equal(restored.features, compiled.features)
        assert tuple(restored.pass_log) == tuple(
            (str(n), bool(c)) for n, c in compiled.pass_log)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_round_trip_hot_null_modifier(seed):
    check_round_trip(seed, OptLevel.HOT, Modifier.null())


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000),
       level=st.sampled_from(list(OptLevel)),
       mod_seed=st.integers(0, 100))
def test_round_trip_all_levels_random_modifiers(seed, level, mod_seed):
    rng = np.random.default_rng(mod_seed)
    modifier = random_modifiers(rng, 1)[0]
    check_round_trip(seed, level, modifier)


class TestBlobValidation:
    def _blob(self, seed=7, level=OptLevel.WARM):
        vm, program = build_vm(seed)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        method = program.methods()[0]
        compiled = compiler.compile(method, level)
        return serialize_compiled(compiled), method, compiled

    def test_describe_blob(self):
        blob, _method, compiled = self._blob()
        meta = describe_blob(blob)
        assert meta["signature"] == compiled.method.signature
        assert meta["level"] is OptLevel.WARM
        assert meta["compile_cycles"] == compiled.compile_cycles
        assert meta["instructions"] == len(compiled.native.instrs)

    def test_truncated_blob_rejected(self):
        blob, method, _ = self._blob()
        for cut in (0, 3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CodeCacheError):
                deserialize_compiled(blob[:cut], method)

    def test_bit_flip_rejected_by_crc(self):
        blob, method, _ = self._blob()
        for pos in (7, len(blob) // 2, len(blob) - 6):
            corrupt = bytearray(blob)
            corrupt[pos] ^= 0x40
            with pytest.raises(CodeCacheError):
                deserialize_compiled(bytes(corrupt), method)

    def test_bad_magic_and_version_rejected(self):
        blob, method, _ = self._blob()
        with pytest.raises(CodeCacheError, match="magic"):
            deserialize_compiled(b"XXXX" + blob[4:], method)
        assert FORMAT_VERSION == 3
        versioned = bytearray(blob)
        versioned[4] = 99  # u16 version little-endian low byte
        with pytest.raises(CodeCacheError, match="version"):
            deserialize_compiled(bytes(versioned), method)

    def test_wrong_method_rejected(self):
        blob, _method, _ = self._blob(seed=7)
        _vm, other_program = build_vm(8)
        other = other_program.methods()[-1]
        with pytest.raises(CodeCacheError):
            deserialize_compiled(blob, other)

    def test_payload_compressed_and_sizes_reported(self):
        blob, _method, compiled = self._blob()
        compressed, raw = payload_sizes(blob)
        assert compressed == len(blob) - _HEADER.size - _RAWLEN.size \
            - _CRC.size
        payload = bytearray()
        _encode(payload, _pack_payload(compiled))
        assert raw == len(payload)
        # The tagged stream is repetitive; deflate must actually win.
        assert compressed < raw

    def test_lied_raw_length_rejected(self):
        blob, method, _ = self._blob()
        forged = bytearray(blob)
        _RAWLEN.pack_into(forged, _HEADER.size,
                          _RAWLEN.unpack_from(blob, _HEADER.size)[0] + 1)
        body = bytes(forged[:-_CRC.size])
        forged[-_CRC.size:] = _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(CodeCacheError, match="header says"):
            deserialize_compiled(bytes(forged), method)


#: Well-formed branch-profile dicts: (bytecode pc, taken) -> count.
profile_dicts = st.dictionaries(
    st.tuples(st.integers(0, 10_000), st.booleans()),
    st.integers(0, 2**40),
    max_size=40)


def _frame(version, payload):
    """Assemble an *uncompressed* blob the way formats 1 and 2 did."""
    out = bytearray(_HEADER.pack(MAGIC, version))
    _encode(out, payload)
    out += _CRC.pack(zlib.crc32(bytes(out)) & 0xFFFFFFFF)
    return bytes(out)


def _frame_v3(payload):
    """Assemble a well-formed current-format (compressed) blob."""
    raw = bytearray()
    _encode(raw, payload)
    out = bytearray(_HEADER.pack(MAGIC, FORMAT_VERSION))
    out += _RAWLEN.pack(len(raw))
    out += zlib.compress(bytes(raw), COMPRESSION_LEVEL)
    out += _CRC.pack(zlib.crc32(bytes(out)) & 0xFFFFFFFF)
    return bytes(out)


class TestProfileSection:
    def _compiled(self):
        vm, program = build_vm(11)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        method = program.methods()[0]
        return compiler.compile(method, OptLevel.VERY_HOT), method

    @settings(max_examples=50, deadline=None)
    @given(profile=profile_dicts)
    def test_profile_codec_round_trip_identity(self, profile):
        assert decode_profile(encode_profile(profile)) == profile

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(profile=profile_dicts)
    def test_blob_round_trip_restores_profile(self, profile):
        compiled, method = self._compiled()
        blob = serialize_compiled(compiled, profile=profile)
        restored = deserialize_compiled(blob, method)
        assert restored.persisted_profile == profile
        meta = describe_blob(blob)
        assert meta["has_profile"]
        assert meta["profile_points"] == len(profile)

    def test_profileless_blob_restores_empty_dict(self):
        compiled, method = self._compiled()
        restored = deserialize_compiled(serialize_compiled(compiled),
                                        method)
        assert restored.persisted_profile == {}
        assert not describe_blob(
            serialize_compiled(compiled))["has_profile"]
        # Fresh compilations, by contrast, are marked None.
        assert compiled.persisted_profile is None

    def test_malformed_profiles_rejected_on_encode(self):
        compiled, _method = self._compiled()
        for bad in ({"pc": 1}, {(1,): 1}, {(1, 2): 1},
                    {(True, True): 1}, {(1, True): -1},
                    {(1, True): "x"}):
            with pytest.raises(CodeCacheError):
                serialize_compiled(compiled, profile=bad)

    def test_malformed_profile_records_rejected_on_decode(self):
        for bad in ("x", ((1, True),), ((1, 2, 3),),
                    ((-1, True, 1),), ((1, True, -1),),
                    ((True, True, 1),), ((1, True, True),)):
            with pytest.raises(CodeCacheError):
                decode_profile(bad)

    def test_duplicate_profile_section_rejected(self):
        compiled, method = self._compiled()
        payload = list(_pack_payload(compiled, {(1, True): 2}))
        payload[11] = payload[11] * 2  # profile section twice
        with pytest.raises(CodeCacheError, match="duplicate"):
            deserialize_compiled(_frame_v3(tuple(payload)), method)

    def test_unknown_section_tags_are_skipped(self):
        """Forward compatibility within the version: a minor addition
        must not brick this reader."""
        compiled, method = self._compiled()
        payload = list(_pack_payload(compiled, {(4, False): 9}))
        payload[11] = (("future-tag", (1, 2, 3)),) + payload[11]
        restored = deserialize_compiled(_frame_v3(tuple(payload)), method)
        assert restored.persisted_profile == {(4, False): 9}


class TestVersion1Rejection:
    """PR-1 (format v1) entries are rejected whole, never half-read."""

    def _v1_blob(self):
        vm, program = build_vm(5)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        method = program.methods()[0]
        compiled = compiler.compile(method, OptLevel.WARM)
        # A genuine version-1 entry: the 11 fields of the old record,
        # framed under version 1 with a valid CRC.
        payload = _pack_payload(compiled)[:11]
        return _frame(1, payload), method, vm

    def test_v1_blob_rejected_by_version_check(self):
        blob, method, _vm = self._v1_blob()
        with pytest.raises(CodeCacheError, match="version 1"):
            deserialize_compiled(blob, method)
        with pytest.raises(CodeCacheError, match="version 1"):
            describe_blob(blob)

    def test_v1_payload_under_v3_header_rejected(self):
        """Even with the version bytes forged, the uncompressed v1 body
        fails inflation instead of being half-read."""
        blob, method, _vm = self._v1_blob()
        forged = bytearray(blob)
        _HEADER.pack_into(forged, 0, MAGIC, FORMAT_VERSION)
        body = bytes(forged[:-_CRC.size])
        forged[-_CRC.size:] = _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(CodeCacheError, match="decompression"):
            deserialize_compiled(bytes(forged), method)

    def test_store_drops_v1_entry_as_a_miss(self, tmp_path):
        """A cache directory left over from PR 1 is drained, not
        crashed on: the stale-format entry is dropped and recompiled."""
        from repro.codecache import CodeCache, CodeCacheConfig
        from repro.jit.modifiers import Modifier
        blob, method, vm = self._v1_blob()
        cache = CodeCache(CodeCacheConfig(
            enabled=True, directory=str(tmp_path / "cc")))
        names = cache._names(method, OptLevel.WARM, Modifier.null(),
                             vm._methods.get)
        path = cache._path(cache._entry_name(*names))
        with open(path, "wb") as fh:
            fh.write(blob)

        fresh = CodeCache(CodeCacheConfig(
            enabled=True, directory=str(tmp_path / "cc")))
        assert len(fresh) == 1
        assert fresh.load(method, OptLevel.WARM, Modifier.null(),
                          resolver=vm._methods.get) is None
        assert fresh.stats.corrupt_dropped == 1
        assert fresh.stats.misses == 1
        assert len(fresh) == 0


class TestVersion2Rejection:
    """PR-2 (format v2, uncompressed) entries are rejected whole."""

    def _v2_blob(self):
        vm, program = build_vm(5)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        method = program.methods()[0]
        compiled = compiler.compile(method, OptLevel.WARM)
        # A genuine version-2 entry: the full 12-field record, framed
        # uncompressed under version 2 with a valid CRC.
        return _frame(2, _pack_payload(compiled)), method, vm

    def test_v2_blob_rejected_by_version_check(self):
        blob, method, _vm = self._v2_blob()
        with pytest.raises(CodeCacheError, match="version 2"):
            deserialize_compiled(blob, method)
        with pytest.raises(CodeCacheError, match="version 2"):
            describe_blob(blob)
        with pytest.raises(CodeCacheError, match="version 2"):
            payload_sizes(blob)

    def test_v2_payload_under_v3_header_rejected(self):
        """The uncompressed v2 body fails inflation, never half-reads."""
        blob, method, _vm = self._v2_blob()
        forged = bytearray(blob)
        _HEADER.pack_into(forged, 0, MAGIC, FORMAT_VERSION)
        body = bytes(forged[:-_CRC.size])
        forged[-_CRC.size:] = _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(CodeCacheError, match="decompression"):
            deserialize_compiled(bytes(forged), method)
