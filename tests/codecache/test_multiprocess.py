"""Multi-process shared-cache stress: writers, a reader, LRU pressure.

The real shared classes cache is one memory-mapped file serving many
JVMs at once.  Our analogue is a directory of atomically-replaced
entry files, so the safety argument is: concurrent writers (including
writers of the *same* key), a read-only reader and size-capped stores
evicting under each other's feet must never crash any participant --
and must never leave a torn entry on disk (``verify`` finds zero bad
entries once everyone has exited).
"""

import os
import subprocess
import sys

import pytest

from repro.codecache import CodeCache, CodeCacheConfig

#: Worker script: argv = (cache_dir, role, worker_id, rounds).
#: Each writer compiles a few tiny methods once, then hammers the
#: store under many distinct model digests (cheap way to many keys),
#: half the time with a profile section attached.  Writers share some
#: method names across processes, so same-key races happen for real.
WORKER = r"""
import sys

from repro.codecache import CodeCache, CodeCacheConfig
from repro.jit.compiler import JitCompiler
from repro.jit.modifiers import Modifier
from repro.jit.plans import OptLevel
from repro.jvm.asm import Assembler
from repro.jvm.bytecode import JType
from repro.jvm.classfile import JClass, JMethod, MethodModifiers
from repro.jvm.vm import VirtualMachine

directory, role, wid, rounds = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]))


def make_method(extra, name):
    a = Assembler()
    a.iconst(0).store(1)
    a.iconst(0).store(2)
    top = a.label()
    a.load(2).load(0).cmp().ifge("end")
    a.load(1).load(2).add().store(1)
    a.inc(2, 1).goto(top)
    a.mark("end")
    a.load(1).iconst(extra).add().retval()
    return JMethod("T", name, (JType.INT,), JType.INT, a.assemble(),
                   modifiers=MethodModifiers.PUBLIC, num_temps=2)


# Two shared methods every process contends on + one private one.
methods = [make_method(1, "shared_a"), make_method(2, "shared_b"),
           make_method(3 + wid, f"private_{wid}")]
vm = VirtualMachine()
jclass = JClass("T")
for m in methods:
    jclass.add_method(m)
vm.load_class(jclass)
compiler = JitCompiler(method_resolver=vm._methods.get)

if role == "reader":
    cache = CodeCache(CodeCacheConfig(
        enabled=True, directory=directory, read_only=True))
    for i in range(rounds):
        for m in methods[:2]:
            cache.load(m, OptLevel.WARM, Modifier.null(),
                       resolver=vm._methods.get,
                       model_digest=f"d{i % 5}")
        cache.verify()
    sys.exit(0)

max_bytes = 6_000 if role == "pressured" else 64 * 1024 * 1024
cache = CodeCache(CodeCacheConfig(
    enabled=True, directory=directory, max_bytes=max_bytes))
compiled = [compiler.compile(m, OptLevel.WARM) for m in methods]
for i in range(rounds):
    body = compiled[i % len(compiled)]
    profile = {(i % 13, i % 2 == 0): i} if i % 2 else None
    cache.store(body, resolver=vm._methods.get,
                model_digest=f"d{i % 5}", profile=profile)
    if i % 3 == 0:
        cache.load(body.method, OptLevel.WARM, Modifier.null(),
                   resolver=vm._methods.get, model_digest=f"d{i % 5}")
sys.exit(0)
"""


@pytest.mark.parametrize("rounds", [40])
def test_concurrent_writers_readers_and_eviction(tmp_path, rounds):
    directory = str(tmp_path / "shared-cc")
    # Pre-create so the read-only reader finds the directory.
    os.makedirs(os.path.join(directory, "entries"))

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")

    def spawn(role, wid):
        return subprocess.Popen(
            [sys.executable, "-c", WORKER, directory, role, str(wid),
             str(rounds)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)

    procs = [spawn("writer", 0), spawn("writer", 1),
             spawn("pressured", 2), spawn("pressured", 3),
             spawn("reader", 4)]
    failures = []
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        if proc.returncode != 0:
            failures.append((proc.args[3:6], proc.returncode,
                             err.decode(errors="replace")[-2000:]))
    assert not failures, f"workers crashed: {failures}"

    # Quiescent state: every surviving entry decodes cleanly.
    cache = CodeCache(CodeCacheConfig(enabled=True, directory=directory))
    ok, bad = cache.verify()
    assert bad == []
    assert len(ok) > 0
    # No writer left a temp file behind.
    leftovers = [n for n in os.listdir(cache.entries_dir)
                 if n.endswith(".tmp")]
    assert leftovers == []
