"""The on-disk store: hits, invalidation, corruption, eviction, LRU."""

import os

import pytest

from repro.codecache import CodeCache, CodeCacheConfig
from repro.jit.compiler import JitCompiler
from repro.jit.modifiers import Modifier
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import JType

from tests.conftest import build_method, vm_with


def add_method(extra=0, name="work", class_name="T"):
    """f(n) = sum 0..n-1 (+ extra): *extra* varies the bytecode body."""

    def body(a):
        a.iconst(0).store(1)
        a.iconst(0).store(2)
        top = a.label()
        a.load(2).load(0).cmp().ifge("end")
        a.load(1).load(2).add().store(1)
        a.inc(2, 1).goto(top)
        a.mark("end")
        a.load(1)
        if extra:
            a.iconst(extra).add()
        a.retval()

    return build_method(body, num_temps=2, name=name,
                        class_name=class_name)


def caller_method(callee_sig, name="entry", class_name="T"):
    def body(a):
        a.load(0).call(callee_sig, 1).retval()

    return build_method(body, num_temps=1, name=name,
                        class_name=class_name)


def compile_one(method, *siblings, level=OptLevel.WARM):
    vm = vm_with(method, *siblings)
    compiler = JitCompiler(method_resolver=vm._methods.get)
    compiled = compiler.compile(method, level)
    return vm, compiled


def open_cache(tmp_path, **overrides):
    config = CodeCacheConfig(enabled=True,
                             directory=str(tmp_path / "cache"),
                             **overrides)
    return CodeCache(config)


class TestStoreAndLoad:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = open_cache(tmp_path)
        method = add_method()
        assert cache.load(method, OptLevel.WARM, Modifier.null()) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_hit_returns_equivalent_body_at_relocation_cost(
            self, tmp_path):
        method = add_method()
        vm, compiled = compile_one(method)
        original_cycles = compiled.compile_cycles
        cache = open_cache(tmp_path)
        assert cache.store(compiled, resolver=vm._methods.get)

        # A second VM run opens the directory fresh.
        cache2 = open_cache(tmp_path)
        hit = cache2.load(method, OptLevel.WARM, Modifier.null(),
                          resolver=vm._methods.get,
                          relocation_cycles=123)
        assert hit is not None
        assert hit.compile_cycles == 123
        assert cache2.stats.hits == 1
        assert cache2.stats.cycles_saved == original_cycles - 123

        run_a, run_b = vm_with(add_method()), vm_with(add_method())
        assert (hit.execute(run_a, [(10, JType.INT)])
                == compiled.execute(run_b, [(10, JType.INT)]))
        assert run_a.clock.now() == run_b.clock.now()

    def test_level_and_modifier_are_part_of_the_key(self, tmp_path):
        method = add_method()
        vm, compiled = compile_one(method)
        cache = open_cache(tmp_path)
        cache.store(compiled, resolver=vm._methods.get)
        assert cache.load(method, OptLevel.HOT, Modifier.null(),
                          resolver=vm._methods.get) is None
        assert cache.load(method, OptLevel.WARM,
                          Modifier.disabling([3]),
                          resolver=vm._methods.get) is None
        assert cache.load(method, OptLevel.WARM, Modifier.null(),
                          resolver=vm._methods.get) is not None
        # Different keys of the same method are not "stale" entries.
        assert cache.stats.invalidations == 0

    def test_model_digest_is_part_of_the_key(self, tmp_path):
        """Entries stored under one model set never serve another --
        and are not deleted either, so concurrent model/no-model runs
        share a directory without thrashing each other's entries."""
        method = add_method()
        vm, compiled = compile_one(method)
        cache = open_cache(tmp_path)
        cache.store(compiled, resolver=vm._methods.get,
                    model_digest="digest-aaaa")
        probe = dict(resolver=vm._methods.get)
        assert cache.load(method, OptLevel.WARM, Modifier.null(),
                          model_digest="digest-bbbb", **probe) is None
        assert cache.load(method, OptLevel.WARM, Modifier.null(),
                          **probe) is None  # heuristic sentinel
        assert cache.load(method, OptLevel.WARM, Modifier.null(),
                          model_digest="digest-aaaa", **probe) is not None
        # Foreign-digest probes miss without invalidating anything.
        assert cache.stats.invalidations == 0
        assert len(cache) == 1

    def test_profile_rides_with_the_stored_entry(self, tmp_path):
        method = add_method()
        vm, compiled = compile_one(method)
        cache = open_cache(tmp_path)
        profile = {(3, True): 17, (3, False): 2}
        assert cache.store(compiled, resolver=vm._methods.get,
                           profile=profile)
        assert cache.stats.profile_stores == 1
        assert cache.stats.stores == 0  # profile write-backs count apart

        cache2 = open_cache(tmp_path)
        hit = cache2.load(method, OptLevel.WARM, Modifier.null(),
                          resolver=vm._methods.get)
        assert hit.persisted_profile == profile
        assert cache2.stats.profile_hits == 1

    def test_restore_replaces_blob_atomically(self, tmp_path):
        """The profile write-back path: storing the same key again
        replaces the entry (now with a profile) without duplicates."""
        method = add_method()
        vm, compiled = compile_one(method)
        cache = open_cache(tmp_path)
        cache.store(compiled, resolver=vm._methods.get)
        cache.store(compiled, resolver=vm._methods.get,
                    profile={(1, False): 4})
        assert len(cache) == 1
        hit = open_cache(tmp_path).load(
            method, OptLevel.WARM, Modifier.null(),
            resolver=vm._methods.get)
        assert hit.persisted_profile == {(1, False): 4}

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        method = add_method()
        vm, compiled = compile_one(method)
        cache = open_cache(tmp_path)
        cache.store(compiled, resolver=vm._methods.get)
        names = os.listdir(cache.entries_dir)
        assert len(names) == 1
        assert not any(n.endswith(".tmp") for n in names)

    def test_read_only_probes_but_never_stores(self, tmp_path):
        method = add_method()
        vm, compiled = compile_one(method)
        cache = open_cache(tmp_path)
        cache.store(compiled, resolver=vm._methods.get)

        ro = CodeCache(CodeCacheConfig(
            enabled=True, directory=str(tmp_path / "cache"),
            read_only=True))
        assert ro.load(method, OptLevel.WARM, Modifier.null(),
                       resolver=vm._methods.get) is not None
        hot = compile_one(method, level=OptLevel.HOT)[1]
        assert not ro.store(hot, resolver=vm._methods.get)
        assert len(ro) == 1


class TestInvalidation:
    def test_changed_bytecode_invalidates(self, tmp_path):
        old = add_method(extra=0)
        vm, compiled = compile_one(old)
        cache = open_cache(tmp_path)
        cache.store(compiled, resolver=vm._methods.get)

        # Same signature, different body: must recompile, not hit.
        new = add_method(extra=5)
        assert new.signature == old.signature
        cache2 = open_cache(tmp_path)
        assert cache2.load(new, OptLevel.WARM, Modifier.null()) is None
        assert cache2.stats.invalidations == 1
        assert cache2.stats.misses == 1
        assert len(cache2) == 0  # stale entry deleted on disk too

    def test_changed_callee_invalidates_caller_entry(self, tmp_path):
        callee = add_method(extra=0, name="callee")
        caller = caller_method(callee.signature, name="entry")
        vm, compiled = compile_one(caller, callee)
        cache = open_cache(tmp_path)
        cache.store(compiled, resolver=vm._methods.get)

        # The caller's bytecode is unchanged, but its (inlinable)
        # callee is not: the constant-pool analogue must invalidate.
        new_callee = add_method(extra=9, name="callee")
        new_vm = vm_with(caller_method(callee.signature, name="entry"),
                         new_callee)
        cache2 = open_cache(tmp_path)
        assert cache2.load(caller, OptLevel.WARM, Modifier.null(),
                           resolver=new_vm._methods.get) is None
        assert cache2.stats.invalidations == 1

    def test_unchanged_program_still_hits(self, tmp_path):
        callee = add_method(name="callee")
        caller = caller_method(callee.signature, name="entry")
        vm, compiled = compile_one(caller, callee)
        cache = open_cache(tmp_path)
        cache.store(compiled, resolver=vm._methods.get)
        cache2 = open_cache(tmp_path)
        assert cache2.load(caller, OptLevel.WARM, Modifier.null(),
                           resolver=vm._methods.get) is not None


class TestCorruption:
    def _stored(self, tmp_path):
        method = add_method()
        vm, compiled = compile_one(method)
        cache = open_cache(tmp_path)
        cache.store(compiled, resolver=vm._methods.get)
        (name,) = os.listdir(cache.entries_dir)
        return method, vm, os.path.join(cache.entries_dir, name)

    def test_truncated_entry_is_dropped_not_fatal(self, tmp_path):
        method, vm, path = self._stored(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:len(data) // 2])
        cache = open_cache(tmp_path)
        assert cache.load(method, OptLevel.WARM, Modifier.null(),
                          resolver=vm._methods.get) is None
        assert cache.stats.corrupt_dropped == 1
        assert not os.path.exists(path)

    def test_garbage_entry_is_dropped_not_fatal(self, tmp_path):
        method, vm, path = self._stored(tmp_path)
        size = os.path.getsize(path)
        with open(path, "wb") as fh:
            fh.write(b"\xde\xad\xbe\xef" * (size // 4 + 1))
        cache = open_cache(tmp_path)
        assert cache.load(method, OptLevel.WARM, Modifier.null(),
                          resolver=vm._methods.get) is None
        assert cache.stats.corrupt_dropped == 1

    def test_verify_and_prune_report_corruption(self, tmp_path):
        method, vm, path = self._stored(tmp_path)
        hot = compile_one(add_method(), level=OptLevel.HOT)[1]
        cache = open_cache(tmp_path)
        cache.store(hot, resolver=vm._methods.get)
        with open(path, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\xff\xff\xff")
        cache = open_cache(tmp_path)
        ok, bad = cache.verify()
        assert len(ok) == 1 and len(bad) == 1
        assert os.path.exists(path)  # verify alone does not delete
        corrupt, _evicted = cache.prune()
        assert corrupt == 1
        assert not os.path.exists(path)
        assert len(cache) == 1


class TestEviction:
    def test_size_cap_evicts_lru_first(self, tmp_path):
        methods = [add_method(extra=i, name=f"m{i}") for i in range(4)]
        compiled = []
        for m in methods:
            vm, c = compile_one(m)
            compiled.append((vm, c))
        from repro.codecache.serialize import serialize_compiled
        one_size = len(serialize_compiled(compiled[0][1]))
        # Room for roughly two entries.
        cache = open_cache(tmp_path, max_bytes=int(one_size * 2.5))
        for vm, c in compiled:
            cache.store(c, resolver=vm._methods.get)
        assert cache.stats.evictions >= 1
        assert cache.total_bytes() <= cache.config.max_bytes
        # The newest entry survives, the oldest was evicted.
        vm3, _ = compiled[3]
        assert cache.load(methods[3], OptLevel.WARM, Modifier.null(),
                          resolver=vm3._methods.get) is not None
        vm0, _ = compiled[0]
        assert cache.load(methods[0], OptLevel.WARM, Modifier.null(),
                          resolver=vm0._methods.get) is None

    def test_hit_refreshes_recency(self, tmp_path):
        methods = [add_method(extra=i, name=f"m{i}") for i in range(3)]
        pairs = [compile_one(m) for m in methods]
        from repro.codecache.serialize import serialize_compiled
        one_size = len(serialize_compiled(pairs[0][1]))
        cache = open_cache(tmp_path, max_bytes=int(one_size * 2.5))
        for vm, c in pairs[:2]:
            cache.store(c, resolver=vm._methods.get)
        # Touch m0 so m1 becomes the LRU victim.
        assert cache.load(methods[0], OptLevel.WARM, Modifier.null(),
                          resolver=pairs[0][0]._methods.get) is not None
        vm2, c2 = pairs[2]
        cache.store(c2, resolver=vm2._methods.get)
        assert cache.load(methods[0], OptLevel.WARM, Modifier.null(),
                          resolver=pairs[0][0]._methods.get) is not None
        assert cache.load(methods[1], OptLevel.WARM, Modifier.null(),
                          resolver=pairs[1][0]._methods.get) is None

    def test_prune_to_explicit_cap(self, tmp_path):
        cache = open_cache(tmp_path)
        for i in range(3):
            vm, c = compile_one(add_method(extra=i, name=f"m{i}"))
            cache.store(c, resolver=vm._methods.get)
        assert len(cache) == 3
        corrupt, evicted = cache.prune(max_bytes=0)
        assert corrupt == 0
        assert evicted == 3
        assert len(cache) == 0
