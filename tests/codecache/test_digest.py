"""The model-set digest that keys the persistent code cache.

Flipping any learned weight, scaling bound or label-table bit must
change :meth:`repro.ml.model.ModelSet.digest`, so a retrained model's
plans never alias a predecessor's cached bodies; heuristic (model-less)
runs key under a fixed sentinel instead.
"""


import numpy as np
import pytest

from repro.codecache import HEURISTIC_DIGEST, strategy_digest
from repro.jit.plans import OptLevel
from repro.ml.dataset import Scaling
from repro.ml.model import LevelModel, ModelSet
from repro.ml.ranking import LabelTable
from repro.ml.svm.linear import LinearSVC
from repro.service.strategy import ModelStrategy


def make_set(name="fold", levels=(OptLevel.COLD, OptLevel.WARM)):
    """A small hand-built model set (no training: tests stay fast)."""
    models = {}
    for k, level in enumerate(levels):
        svm = LinearSVC(C=10.0)
        svm.W = (np.arange(12, dtype=np.float64).reshape(3, 4)
                 + 100.0 * k)
        svm.classes_ = np.array([1, 2, 3])
        scaling = Scaling(np.zeros(4), np.ones(4) * (k + 1))
        table = LabelTable([0, 5, 9])
        models[level] = LevelModel(level, svm, scaling, table)
    return ModelSet(name, models)


class TestModelSetDigest:
    def test_identical_sets_share_a_digest(self):
        assert make_set().digest() == make_set().digest()

    def test_name_is_excluded(self):
        assert make_set(name="a").digest() == make_set(name="b").digest()

    def test_any_weight_flip_changes_the_digest(self):
        base = make_set().digest()
        for level in (OptLevel.COLD, OptLevel.WARM):
            for i in range(3):
                for j in range(4):
                    tweaked = make_set()
                    tweaked.models[level].svm.W[i, j] += 1e-9
                    assert tweaked.digest() != base, \
                        f"W[{i},{j}] flip at {level.name} undetected"

    def test_scaling_and_label_table_are_covered(self):
        base = make_set().digest()
        s = make_set()
        s.models[OptLevel.COLD].scaling.maximum[2] += 0.5
        assert s.digest() != base
        t = make_set()
        t.models[OptLevel.WARM].label_table.label_for(123)
        assert t.digest() != base

    def test_adding_a_level_changes_the_digest(self):
        small = make_set(levels=(OptLevel.COLD,))
        assert small.digest() != make_set().digest()

    def test_digest_is_short_stable_hex(self):
        digest = make_set().digest()
        assert len(digest) == 24
        int(digest, 16)  # hex or raise

    def test_rbf_support_data_hashes_too(self):
        """digest_into duck-types the svm: RBF-style attributes (X_,
        dual_coef_, gamma) are covered when present."""

        class FakeRbf:
            X_ = np.ones((2, 4))
            dual_coef_ = np.ones((1, 2))
            gamma = 0.5
            C = 10.0

        def with_rbf(gamma):
            s = make_set(levels=(OptLevel.COLD,))
            rbf = FakeRbf()
            rbf.gamma = gamma
            s.models[OptLevel.COLD].svm = rbf
            return s.digest()

        assert with_rbf(0.5) == with_rbf(0.5)
        assert with_rbf(0.5) != with_rbf(0.25)
        assert with_rbf(0.5) != make_set(levels=(OptLevel.COLD,)).digest()


class TestStrategyDigest:
    def test_no_strategy_keys_under_the_sentinel(self):
        assert strategy_digest(None) == HEURISTIC_DIGEST

    def test_model_strategy_exposes_the_set_digest(self):
        model_set = make_set()
        strategy = ModelStrategy(model_set)
        assert strategy.model_digest() == model_set.digest()
        assert strategy_digest(strategy) == model_set.digest()

    def test_mutating_the_set_is_visible_through_the_strategy(self):
        model_set = make_set()
        strategy = ModelStrategy(model_set)
        before = strategy_digest(strategy)
        model_set.models[OptLevel.COLD].svm.W[0, 0] += 1.0
        assert strategy_digest(strategy) != before

    def test_unkeyed_strategies_get_a_stable_class_digest(self):
        class Heuristicish:
            def choose_modifier(self, method, level, features):
                return None

        a, b = strategy_digest(Heuristicish()), \
            strategy_digest(Heuristicish())
        assert a == b
        assert a != HEURISTIC_DIGEST
        assert a != strategy_digest(None)
