"""Shared fixtures."""

import pytest

from repro.jvm.asm import Assembler
from repro.jvm.bytecode import JType
from repro.jvm.classfile import JClass, JMethod, MethodModifiers
from repro.jvm.vm import VirtualMachine


def build_method(body_fn, params=(JType.INT,), ret=JType.INT,
                 num_temps=4, name="m", class_name="T",
                 modifiers=MethodModifiers.PUBLIC, handlers=None,
                 array_elems=None):
    """Assemble a method from a body-building callback."""
    asm = Assembler()
    returned = body_fn(asm)
    hlist = list(returned) if isinstance(returned, (list, tuple)) else []
    if handlers:
        hlist = list(hlist) + list(handlers)
    return JMethod(class_name, name, params, ret, asm.assemble(),
                   modifiers=modifiers, num_temps=num_temps,
                   handlers=hlist, array_elems=array_elems)


def vm_with(*methods):
    """A VM loaded with the given methods (grouped by class name)."""
    vm = VirtualMachine()
    classes = {}
    for method in methods:
        jclass = classes.get(method.class_name)
        if jclass is None:
            jclass = JClass(method.class_name)
            classes[method.class_name] = jclass
        jclass.add_method(method)
    for jclass in classes.values():
        vm.load_class(jclass)
    return vm


@pytest.fixture
def sum_to_method():
    """sumTo(n): sum of 0..n-1 via a counted loop."""

    def body(a):
        a.iconst(0).store(1)
        a.iconst(0).store(2)
        top = a.label()
        a.load(2).load(0).cmp().ifge("end")
        a.load(1).load(2).add().store(1)
        a.inc(2, 1).goto(top)
        a.mark("end")
        a.load(1).retval()

    return build_method(body, num_temps=2, name="sumTo")


@pytest.fixture
def loaded_vm(sum_to_method):
    return vm_with(sum_to_method), sum_to_method
