"""The overhead guard: a disabled (null) tracer must cost under the
published budget on the interpreter microbenchmark, and no tracer mode
may move virtual time."""

from repro.experiments.hostperf import (NULL_TRACER_BUDGET,
                                        TRACER_MODES,
                                        render_tracer_overhead,
                                        run_tracer_overhead)


def test_null_tracer_overhead_under_budget():
    overhead = run_tracer_overhead(quick=True, repeats=3)
    if overhead["null_overhead"] >= NULL_TRACER_BUDGET:
        # A loaded CI host can swallow the ~0% true cost in noise even
        # with interleaved min-of-N; one deeper retry before failing.
        overhead = run_tracer_overhead(quick=True, repeats=7)
    assert set(overhead["modes"]) == set(TRACER_MODES)
    assert overhead["cycles_identical"] is True
    assert overhead["null_overhead"] < NULL_TRACER_BUDGET, (
        f"null tracer costs {overhead['null_overhead']:.1%} on the "
        f"interpreter microbenchmark "
        f"(budget {NULL_TRACER_BUDGET:.0%}):\n"
        + render_tracer_overhead(overhead))
    # The recording tracer has a budget too -- generous, because it is
    # actually writing events -- mostly to catch accidental per-bytecode
    # instrumentation sneaking into the hot loops.
    assert overhead["on_overhead"] < 0.25


def test_render_tracer_overhead_lists_every_mode():
    overhead = run_tracer_overhead(quick=True, repeats=1)
    text = render_tracer_overhead(overhead)
    for mode in TRACER_MODES:
        assert mode in text
