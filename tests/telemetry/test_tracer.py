"""Tracer core: spans, instants, counters, sinks, the active-tracer
scope, and the null tracer's do-nothing guarantees."""

import json

import pytest

from repro import telemetry
from repro.clock import VirtualClock
from repro.telemetry import (JsonlSink, NullTracer, RingBufferSink,
                             TeeSink, Tracer)
from repro.telemetry.sinks import read_jsonl
from repro.telemetry.tracer import NULL_SPAN, NULL_TRACER


class TestTracer:

    def test_span_records_host_and_virtual_time(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", cat="test", key="v") as span:
            clock.advance(123)
            span.set(extra=1)
        (rec,) = tracer.events()
        assert rec["name"] == "work"
        assert rec["ph"] == "X"
        assert rec["cat"] == "test"
        assert rec["dur"] >= 0
        assert rec["vts"] == 0
        assert rec["vdur"] == 123
        assert rec["args"] == {"key": "v", "extra": 1}

    def test_span_without_clock_has_no_virtual_stamps(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (rec,) = tracer.events()
        assert rec["vts"] is None and rec["vdur"] is None

    def test_spans_nest_in_emission_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [r["name"] for r in tracer.events()]
        # Complete events are emitted at span *exit*: inner first.
        assert names == ["inner", "outer"]
        inner, outer = tracer.events()
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_span_annotates_escaping_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        (rec,) = tracer.events()
        assert rec["args"]["error"] == "ValueError"

    def test_instant_and_counter(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        clock.advance(7)
        tracer.instant("tick", cat="vm", method="m")
        tracer.counter("depth", 3)
        instant, counter = tracer.events()
        assert instant["ph"] == "i" and instant["vts"] == 7
        assert counter["ph"] == "C"
        assert counter["args"] == {"value": 3}

    def test_bind_clock_rebinds(self):
        tracer = Tracer()
        a, b = VirtualClock(), VirtualClock()
        tracer.bind_clock(a)
        a.advance(5)
        tracer.instant("x")
        tracer.bind_clock(b)
        tracer.instant("y")
        first, second = tracer.events()
        assert first["vts"] == 5 and second["vts"] == 0


class TestNullTracer:

    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("x", cat="c", a=1) as span:
            assert span is NULL_SPAN
            span.set(b=2)
        tracer.instant("y")
        tracer.counter("z", 1)
        tracer.bind_clock(VirtualClock())
        assert tracer.events() == []
        tracer.close()

    def test_default_active_tracer_is_null(self):
        assert telemetry.get_tracer() is NULL_TRACER


class TestActiveTracerScope:

    def test_tracing_installs_and_restores(self):
        tracer = Tracer()
        before = telemetry.get_tracer()
        with telemetry.tracing(tracer) as active:
            assert active is tracer
            assert telemetry.get_tracer() is tracer
        assert telemetry.get_tracer() is before

    def test_tracing_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with telemetry.tracing(tracer):
                raise RuntimeError
        assert telemetry.get_tracer() is NULL_TRACER

    def test_tracing_none_keeps_ambient(self):
        outer = Tracer()
        with telemetry.tracing(outer):
            with telemetry.tracing(None) as active:
                assert active is outer
                assert telemetry.get_tracer() is outer

    def test_set_tracer_none_restores_null(self):
        previous = telemetry.set_tracer(Tracer())
        assert previous is NULL_TRACER
        telemetry.set_tracer(None)
        assert telemetry.get_tracer() is NULL_TRACER


class TestSinks:

    def test_ring_buffer_caps_and_counts_drops(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit({"i": i})
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [r["i"] for r in sink.events()] == [2, 3, 4]

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(sink=sink)
        with tracer.span("a", cat="c"):
            pass
        tracer.instant("b")
        tracer.close()
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["a", "b"]
        assert sink.emitted == 2
        # Every line is standalone JSON.
        with open(path) as fh:
            for line in fh:
                json.loads(line)

    def test_tee_duplicates(self, tmp_path):
        ring = RingBufferSink()
        jsonl = JsonlSink(str(tmp_path / "t.jsonl"))
        tracer = Tracer(sink=TeeSink(ring, jsonl))
        tracer.instant("x")
        tracer.close()
        assert len(ring.events()) == 1
        assert len(read_jsonl(jsonl.path)) == 1
        # events() falls through to the first retaining sink.
        assert tracer.events() == ring.events()
