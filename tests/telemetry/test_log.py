"""Central logging config: one handler, one root, no basicConfig."""

import io
import logging

import pytest

from repro import log as repro_log


@pytest.fixture(autouse=True)
def reset_repro_logger():
    root = logging.getLogger(repro_log.ROOT)
    saved = (list(root.handlers), root.level, root.propagate)
    yield
    root.handlers, root.level, root.propagate = \
        list(saved[0]), saved[1], saved[2]


def _repro_handlers():
    root = logging.getLogger(repro_log.ROOT)
    return [h for h in root.handlers
            if getattr(h, "_repro_handler", False)]


def test_get_logger_prefixes_the_repro_root():
    assert repro_log.get_logger("codecache").name == "repro.codecache"
    assert repro_log.get_logger("repro.jit").name == "repro.jit"
    assert repro_log.get_logger().name == "repro"


def test_parse_level():
    assert repro_log.parse_level("debug") == logging.DEBUG
    assert repro_log.parse_level("WARNING") == logging.WARNING
    assert repro_log.parse_level(10) == 10
    with pytest.raises(ValueError):
        repro_log.parse_level("loud")


def test_configure_is_idempotent():
    repro_log.configure("info")
    repro_log.configure("debug")
    assert len(_repro_handlers()) == 1
    root = logging.getLogger(repro_log.ROOT)
    assert root.level == logging.DEBUG
    assert root.propagate is False


def test_configured_output_goes_to_stream():
    stream = io.StringIO()
    repro_log.configure("info", stream=stream)
    repro_log.get_logger("codecache").info("hello cache")
    out = stream.getvalue()
    assert "hello cache" in out
    assert "repro.codecache" in out


def test_library_modules_use_the_repro_root():
    # The migrated codecache logger hangs off the shared root, so one
    # configure() call governs it.
    from repro.codecache import store
    assert store.log.name == "repro.codecache"
    assert store.log.parent.name in ("repro", "repro.codecache")
