"""MetricsRegistry: one snapshot over vm/jit/cache counters, and the
diff/render helpers the ``repro stats`` CLI is built on."""

import pytest

from repro.codecache import CodeCache, CodeCacheConfig
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager
from repro.jvm.vm import VirtualMachine
from repro.telemetry import MetricsRegistry, standard_registry
from repro.workloads import specjvm_program


class TestRegistry:

    def test_snapshot_flattens_by_component(self):
        registry = MetricsRegistry()
        registry.register("a", lambda: {"x": 1, "y": 2})
        registry.register("b", lambda: {"x": 10})
        assert registry.snapshot() == {"a.x": 1, "a.y": 2, "b.x": 10}
        assert registry.components() == ["a", "b"]

    def test_snapshot_reads_live_values(self):
        counters = {"n": 0}
        registry = MetricsRegistry()
        registry.register("c", lambda: dict(counters))
        assert registry.snapshot()["c.n"] == 0
        counters["n"] = 7
        assert registry.snapshot()["c.n"] == 7

    def test_reregister_replaces_and_unregister_removes(self):
        registry = MetricsRegistry()
        registry.register("a", lambda: {"x": 1})
        registry.register("a", lambda: {"x": 2})
        assert registry.snapshot() == {"a.x": 2}
        registry.unregister("a")
        assert registry.snapshot() == {}
        registry.unregister("a")  # idempotent

    def test_non_callable_source_rejected(self):
        with pytest.raises(TypeError):
            MetricsRegistry().register("a", {"x": 1})

    def test_diff_is_numeric_only(self):
        before = {"a.n": 3, "a.label": "cold", "a.flag": True}
        after = {"a.n": 10, "a.label": "warm", "a.flag": False,
                 "a.new": 4}
        delta = MetricsRegistry.diff(before, after)
        assert delta == {"a.n": 7, "a.new": 4}

    def test_render_groups_and_formats(self):
        text = MetricsRegistry.render(
            {"vm.cycles": 1234567, "vm.ratio": 1.5, "jit.n": 2})
        lines = text.splitlines()
        assert lines[0] == "jit:"
        assert "1,234,567" in text
        assert "1.500" in text
        assert any(line.strip().startswith("cycles") for line in lines)


class TestStandardRegistry:

    def _run(self, cache=None):
        program = specjvm_program("compress")
        vm = VirtualMachine()
        vm.load_program(program)
        manager = CompilationManager(
            JitCompiler(method_resolver=vm._methods.get),
            code_cache=cache)
        vm.attach_manager(manager)
        vm.call(program.entry, 3)
        return vm, manager

    def test_vm_and_jit_discovered_from_vm(self):
        vm, manager = self._run()
        snapshot = standard_registry(vm=vm).snapshot()
        assert snapshot["vm.cycles"] == vm.clock.now()
        assert snapshot["vm.methods_loaded"] == len(vm.methods())
        assert snapshot["jit.compilations"] == manager.compilations()
        assert snapshot["jit.compile_cycles"] == \
            manager.total_compile_cycles
        assert snapshot["jit.compilations"] > 0
        # Per-level breakdown sums to the total.
        per_level = [v for k, v in snapshot.items()
                     if k.startswith("jit.compilations_")]
        assert sum(per_level) == snapshot["jit.compilations"]

    def test_cache_discovered_from_manager(self, tmp_path):
        cache = CodeCache(CodeCacheConfig(enabled=True,
                                          directory=str(tmp_path)))
        vm, _manager = self._run(cache)
        snapshot = standard_registry(vm=vm).snapshot()
        assert snapshot["cache.stores"] == cache.stats.stores
        assert snapshot["cache.stores"] > 0

    def test_diff_isolates_an_interval(self):
        program = specjvm_program("compress")
        vm = VirtualMachine()
        vm.load_program(program)
        vm.attach_manager(CompilationManager(
            JitCompiler(method_resolver=vm._methods.get)))
        registry = standard_registry(vm=vm)
        vm.call(program.entry, 3)
        before = registry.snapshot()
        vm.call(program.entry, 3)
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert delta["vm.cycles"] > 0
        # The second iteration runs mostly compiled: far fewer (often
        # zero) new compilations than the first.
        assert delta["jit.compilations"] <= before["jit.compilations"]

    def test_absent_components_contribute_nothing(self):
        registry = standard_registry()
        assert registry.snapshot() == {}
