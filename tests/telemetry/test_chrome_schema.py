"""Exported traces are valid Chrome trace-event JSON: the schema the
CI trace-smoke step and Perfetto's importer both rely on."""

import pytest

from repro import telemetry
from repro.experiments.measure import run_once
from repro.telemetry import (RingBufferSink, Tracer, chrome_trace,
                             validate_chrome_trace, write_chrome_trace)
from repro.telemetry.chrome import (TRACE_PID, TRACE_TID,
                                    load_chrome_trace, summarize_events,
                                    to_chrome_events)
from repro.workloads import specjvm_program


@pytest.fixture(scope="module")
def traced_records():
    """Records from one small traced adaptive run (shared: read-only)."""
    tracer = Tracer(sink=RingBufferSink(capacity=1 << 18))
    run_once(specjvm_program("compress"), iterations=1, tracer=tracer)
    records = tracer.events()
    assert records, "traced run produced no events"
    return records


class TestExportedTrace:

    def test_validates_clean(self, traced_records):
        assert validate_chrome_trace(chrome_trace(traced_records)) == []

    def test_event_schema(self, traced_records):
        events = to_chrome_events(traced_records)
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        for event in events:
            assert event["pid"] == TRACE_PID
            assert event["tid"] == TRACE_TID
            assert event["ph"] in ("X", "i", "C")
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_covers_at_least_three_layers(self, traced_records):
        cats = {e["cat"] for e in to_chrome_events(traced_records)}
        assert len(cats & {"vm", "jit", "pass", "cache", "control",
                           "service", "experiment"}) >= 3

    def test_virtual_cycles_ride_in_args(self, traced_records):
        events = to_chrome_events(traced_records)
        spans = [e for e in events if e["ph"] == "X"
                 and e["cat"] == "pass"]
        assert spans
        for event in spans:
            assert "vcycles" in event["args"]
            assert "vcycles_dur" in event["args"]

    def test_file_round_trip(self, traced_records, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(traced_records, path)
        trace = load_chrome_trace(path)
        assert len(trace["traceEvents"]) == count == len(traced_records)
        assert validate_chrome_trace(trace) == []
        summary = summarize_events(trace["traceEvents"])
        assert summary["events"] == count
        assert summary["hottest_spans"]


class TestValidator:
    """The validator must actually catch broken traces, or the CI
    smoke step is theater."""

    def _event(self, **over):
        event = {"name": "e", "cat": "c", "ph": "i", "ts": 1.0,
                 "pid": 1, "tid": 1, "s": "t", "args": {}}
        event.update(over)
        return event

    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) \
            and validate_chrome_trace({"traceEvents": "nope"})

    def test_rejects_missing_fields(self):
        event = self._event()
        del event["pid"]
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert any("pid" in p for p in problems)

    def test_rejects_unsorted_timestamps(self):
        trace = {"traceEvents": [self._event(ts=5.0),
                                 self._event(ts=1.0)]}
        assert any("out of order" in p
                   for p in validate_chrome_trace(trace))

    def test_rejects_negative_duration(self):
        trace = {"traceEvents": [self._event(ph="X", dur=-1.0)]}
        assert any("dur" in p for p in validate_chrome_trace(trace))

    def test_rejects_unbalanced_begin_end(self):
        begin = self._event(ph="B")
        end = self._event(ph="E", ts=2.0)
        assert validate_chrome_trace({"traceEvents": [begin]})
        assert validate_chrome_trace({"traceEvents": [end]})
        assert validate_chrome_trace(
            {"traceEvents": [begin, end]}) == []

    def test_rejects_unknown_phase(self):
        trace = {"traceEvents": [self._event(ph="?")]}
        assert any("phase" in p for p in validate_chrome_trace(trace))

    def test_counter_events_plot_named_value(self):
        tracer = Tracer()
        tracer.counter("cache_bytes", 42, cat="cache")
        (event,) = to_chrome_events(tracer.events())
        assert event["args"] == {"cache_bytes": 42}
