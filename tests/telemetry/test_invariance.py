"""Tracing must be a pure observer: enabling it cannot move a single
virtual cycle, change a result, or alter a compilation decision.

Mirrors ``tests/jvm/test_dispatch_parity.py``: hypothesis properties
over generated programs plus bit-identical adaptive runs of the real
benchmarks, each executed traced and untraced.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import telemetry
from repro.codecache import CodeCache, CodeCacheConfig
from repro.experiments.measure import run_once
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager
from repro.jit.plans import OptLevel
from repro.jvm.vm import VirtualMachine
from repro.telemetry import RingBufferSink, Tracer
from repro.workloads import specjvm_program
from tests.jit.test_equivalence import args_for, build_vm, same_outcome

#: Guest-visible observables that must not depend on the tracer.
HEAP_KEYS = ("allocations", "monitor_ops")


def _observe_interp(seed, method_sig, args):
    vm, _program = build_vm(seed)
    method = vm._methods[method_sig]
    try:
        result = vm.interpreter.execute(method, list(args))
    except Exception as exc:  # guest exception escaping is valid
        result = ("raised", type(exc).__name__, str(exc))
    return result, vm.clock.now(), \
        tuple(vm.stats[k] for k in HEAP_KEYS)


def _observe_compiled(seed, method_sig, args, level):
    vm, _program = build_vm(seed)
    method = vm._methods[method_sig]
    compiler = JitCompiler(method_resolver=vm._methods.get)
    compiled = compiler.compile(method, level)
    try:
        result = compiled.execute(vm, list(args))
    except Exception as exc:
        result = ("raised", type(exc).__name__, str(exc))
    return result, vm.clock.now(), \
        tuple(vm.stats[k] for k in HEAP_KEYS)


def _assert_same(traced, plain, label):
    t_result, t_cycles, t_heap = traced
    p_result, p_cycles, p_heap = plain
    assert same_outcome(t_result, p_result), (
        f"{label}: result {t_result!r} != {p_result!r}")
    assert t_cycles == p_cycles, (
        f"{label}: cycles {t_cycles} != {p_cycles}")
    assert t_heap == p_heap, (
        f"{label}: heap stats {t_heap} != {p_heap}")


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), arg_seed=st.integers(0, 50))
def test_interpretation_invariant_under_tracing(seed, arg_seed):
    """Random method, interpreted: traced vs untraced is identical in
    (result, cycle count, heap stats)."""
    vm, program = build_vm(seed)
    for method in program.methods():
        args = args_for(method, arg_seed)
        with telemetry.tracing(Tracer()):
            traced = _observe_interp(seed, method.signature, args)
        plain = _observe_interp(seed, method.signature, args)
        _assert_same(traced, plain, f"{method.signature} interp")


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000),
       level=st.sampled_from(list(OptLevel)),
       arg_seed=st.integers(0, 50))
def test_compilation_invariant_under_tracing(seed, level, arg_seed):
    """Random method compiled at each level -- the PassTimer wraps
    every optimizer pass, yet traced compilation+execution matches the
    untraced run bit for bit."""
    vm, program = build_vm(seed)
    for method in program.methods():
        args = args_for(method, arg_seed)
        with telemetry.tracing(Tracer()):
            traced = _observe_compiled(seed, method.signature, args,
                                       level)
        plain = _observe_compiled(seed, method.signature, args, level)
        _assert_same(traced, plain,
                     f"{method.signature} compiled@{level.name}")


def _adaptive_run(name, iterations=2):
    """Full adaptive run under the ambient tracer; returns every
    observable that must be tracer-invariant."""
    program = specjvm_program(name)
    vm = VirtualMachine()
    vm.load_program(program)
    manager = CompilationManager(
        JitCompiler(method_resolver=vm._methods.get))
    vm.attach_manager(manager)
    results = tuple(vm.call(program.entry, 3) for _ in range(iterations))
    compile_counts = tuple(sorted(
        (sig, state.compile_count)
        for sig, state in manager.states.items()))
    return (results, vm.clock.now(),
            tuple(vm.stats[k] for k in HEAP_KEYS),
            manager.total_compile_cycles, compile_counts)


@pytest.mark.parametrize("name", ["compress", "db"])
def test_adaptive_benchmarks_invariant_under_tracing(name):
    """Acceptance gate: adaptive runs of real benchmarks are
    bit-identical -- cycles, compile counts, compile cycles, results --
    with tracing on or off, and the traced run actually recorded spans
    from the jit and pass layers."""
    tracer = Tracer(sink=RingBufferSink(capacity=1 << 18))
    with telemetry.tracing(tracer):
        traced = _adaptive_run(name)
    plain = _adaptive_run(name)
    assert traced == plain
    cats = {rec["cat"] for rec in tracer.events()}
    assert {"jit", "pass", "vm"} <= cats


def test_cold_cache_run_invariant_under_tracing(tmp_path):
    """Adaptive run against a cold code cache: the cache.probe /
    cache.store spans wrap real store I/O, yet virtual observables and
    the cache counters themselves are tracer-invariant."""
    program = specjvm_program("compress")

    def cold_run(directory, tracer):
        cache = CodeCache(CodeCacheConfig(enabled=True,
                                          directory=str(directory)))
        return run_once(program, iterations=1, code_cache=cache,
                        tracer=tracer), cache

    tracer = Tracer(sink=RingBufferSink(capacity=1 << 18))
    traced, _ = cold_run(tmp_path / "traced", tracer)
    plain, _ = cold_run(tmp_path / "plain", None)
    assert traced.result_value == plain.result_value
    assert traced.total_cycles == plain.total_cycles
    assert traced.compile_cycles == plain.compile_cycles
    assert traced.compilations == plain.compilations
    assert traced.cache_stats == plain.cache_stats
    assert traced.cache_stats["stores"] > 0
    assert any(rec["cat"] == "cache" for rec in tracer.events())
