"""Core utilities: deterministic RNG streams and the virtual clock."""

import pytest

from repro.clock import (
    CYCLES_PER_MS,
    VirtualClock,
    cycles_to_ms,
    ms_to_cycles,
)
from repro.rng import RngStreams, default_streams


class TestRngStreams:
    def test_same_name_same_generator_object(self):
        streams = RngStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_same_seed_reproducible(self):
        a = RngStreams(7).get("x").integers(0, 1 << 30, size=10)
        b = RngStreams(7).get("x").integers(0, 1 << 30, size=10)
        assert (a == b).all()

    def test_different_names_independent(self):
        streams = RngStreams(7)
        a = streams.get("x").integers(0, 1 << 30, size=10)
        b = streams.get("y").integers(0, 1 << 30, size=10)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x").integers(0, 1 << 30, size=10)
        b = RngStreams(2).get("x").integers(0, 1 << 30, size=10)
        assert (a != b).any()

    def test_fork_deterministic(self):
        base = RngStreams(3)
        f1 = base.fork("rep1")
        f2 = RngStreams(3).fork("rep1")
        assert f1.master_seed == f2.master_seed
        assert f1.master_seed != base.master_seed

    def test_default_streams(self):
        assert default_streams().master_seed == 0


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(50)
        assert clock.now() == 150

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_seconds_conversion(self):
        clock = VirtualClock(2_000_000_000)
        assert clock.seconds() == 1.0

    def test_ms_round_trip(self):
        assert cycles_to_ms(ms_to_cycles(10)) == pytest.approx(10)
        assert ms_to_cycles(1) == CYCLES_PER_MS


class TestErrors:
    def test_hierarchy(self):
        from repro.errors import (
            ArchiveError,
            BytecodeError,
            CompilationError,
            DatasetError,
            JavaThrow,
            ProtocolError,
            ReproError,
            TrainingError,
            VMError,
        )
        for exc in (BytecodeError, VMError, JavaThrow,
                    CompilationError, ArchiveError, DatasetError,
                    TrainingError, ProtocolError):
            assert issubclass(exc, ReproError)

    def test_java_throw_carries_class(self):
        from repro.errors import JavaThrow
        exc = JavaThrow("java/lang/Foo", "bar")
        assert exc.class_name == "java/lang/Foo"
        assert exc.guest_message == "bar"
        assert "Foo" in str(exc)
