"""The from-scratch SVMs: linear (Crammer-Singer) and RBF."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.svm.kernels import linear_kernel, rbf_kernel
from repro.ml.svm.linear import LinearSVC, _solve_subproblem
from repro.ml.svm.rbf import KernelSVC


def gaussian_blobs(n_classes=3, per_class=40, dim=8, sep=6.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, sep, size=(n_classes, dim))
    X = np.vstack([c + rng.normal(0, 0.6, size=(per_class, dim))
                   for c in centers])
    y = np.repeat(np.arange(10, 10 + n_classes), per_class)
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


class TestSubproblem:
    def test_solution_satisfies_constraints(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            L = int(rng.integers(2, 8))
            A = float(rng.uniform(0.1, 5))
            B = rng.normal(0, 3, size=L)
            caps = np.zeros(L)
            caps[int(rng.integers(0, L))] = 10.0
            alpha = _solve_subproblem(A, B, caps)
            assert abs(alpha.sum()) < 1e-6
            assert np.all(alpha <= caps + 1e-9)

    def test_optimality_kkt(self):
        # At the optimum, all uncapped coordinates share the same
        # gradient A*alpha_m + B_m (= beta).
        A, B = 2.0, np.array([1.0, -1.0, 0.5, 3.0])
        caps = np.array([10.0, 0.0, 0.0, 0.0])
        alpha = _solve_subproblem(A, B, caps)
        grads = A * alpha + B
        free = alpha < caps - 1e-9
        if free.sum() > 1:
            assert np.ptp(grads[free]) < 1e-4


class TestLinearSVC:
    def test_separable_data_perfect(self):
        X, y = gaussian_blobs()
        model = LinearSVC(C=10).fit(X[:90], y[:90])
        assert (model.predict(X[90:]) == y[90:]).mean() > 0.95

    def test_weight_matrix_shape(self):
        X, y = gaussian_blobs(n_classes=4, dim=6)
        model = LinearSVC(C=1).fit(X, y)
        assert model.weight_matrix.shape == (6, 4)

    def test_deterministic(self):
        X, y = gaussian_blobs()
        a = LinearSVC(C=10, seed=3).fit(X, y)
        b = LinearSVC(C=10, seed=3).fit(X, y)
        assert np.array_equal(a.W, b.W)

    def test_single_class_degenerates_gracefully(self):
        X = np.ones((5, 3))
        y = np.array([7] * 5)
        model = LinearSVC().fit(X, y)
        assert model.predict(X[0]) == 7

    def test_two_classes(self):
        X, y = gaussian_blobs(n_classes=2)
        model = LinearSVC(C=10).fit(X, y)
        assert set(np.unique(model.predict(X))) <= {10, 11}

    def test_rejects_bad_inputs(self):
        with pytest.raises(TrainingError):
            LinearSVC(C=-1)
        with pytest.raises(TrainingError):
            LinearSVC().fit(np.zeros((0, 3)), np.zeros(0))
        with pytest.raises(TrainingError):
            LinearSVC().fit(np.zeros((3, 2)), np.zeros(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(TrainingError):
            LinearSVC().predict(np.zeros(3))

    def test_labels_preserved(self):
        X, y = gaussian_blobs(n_classes=3)
        y = y * 1000 + 1  # arbitrary labels
        model = LinearSVC(C=10).fit(X, y)
        assert set(model.predict(X)) <= set(y.tolist())

    def test_overlapping_data_converges(self):
        rng = np.random.default_rng(5)
        X = rng.normal(0, 1, size=(120, 5))
        y = (X[:, 0] + rng.normal(0, 0.5, 120) > 0).astype(int)
        model = LinearSVC(C=10, max_epochs=30).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.7


class TestKernelSVC:
    def test_xor_needs_rbf(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(200, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        linear = LinearSVC(C=10).fit(X, y)
        rbf = KernelSVC(C=10, gamma=2.0).fit(X, y)
        linear_acc = (linear.predict(X) == y).mean()
        rbf_acc = (rbf.predict(X) == y).mean()
        assert rbf_acc > 0.9
        assert rbf_acc > linear_acc

    def test_support_vector_count(self):
        X, y = gaussian_blobs(n_classes=2)
        model = KernelSVC(C=10, gamma=0.1).fit(X, y)
        assert 0 < model.support_vector_count() <= len(X)

    def test_predict_before_fit_raises(self):
        with pytest.raises(TrainingError):
            KernelSVC().predict(np.zeros(3))


class TestKernels:
    def test_linear_kernel_is_dot(self):
        A = np.array([[1.0, 2.0]])
        B = np.array([[3.0, 4.0]])
        assert linear_kernel(A, B)[0, 0] == 11.0

    def test_rbf_kernel_bounds(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(10, 4))
        K = rbf_kernel(A, A, gamma=0.7)
        assert np.allclose(np.diag(K), 1.0)
        assert np.all(K > 0) and np.all(K <= 1.0 + 1e-12)
        assert np.allclose(K, K.T)
