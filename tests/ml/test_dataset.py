"""Normalization (Eq. 3), scaling files, the LIBLINEAR text format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError
from repro.features import NUM_FEATURES
from repro.ml.dataset import Scaling, read_liblinear, write_liblinear


class TestScaling:
    def test_normalizes_to_unit_range(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        scaling = Scaling.fit(data)
        out = scaling.transform(data)
        assert out.min() == 0.0 and out.max() == 1.0
        assert out[1, 0] == pytest.approx(0.5)

    def test_constant_component_maps_to_zero(self):
        data = np.array([[3.0, 1.0], [3.0, 2.0]])
        scaling = Scaling.fit(data)
        out = scaling.transform(data)
        assert np.all(out[:, 0] == 0.0)

    def test_unseen_values_clipped(self):
        data = np.array([[0.0], [10.0]])
        scaling = Scaling.fit(data)
        assert scaling.transform(np.array([20.0]))[0] == 1.0
        assert scaling.transform(np.array([-5.0]))[0] == 0.0

    def test_single_vector_transform(self):
        data = np.array([[0.0, 0.0], [4.0, 8.0]])
        scaling = Scaling.fit(data)
        out = scaling.transform(np.array([2.0, 2.0]))
        assert out[0] == 0.5 and out[1] == 0.25

    def test_fit_rejects_empty(self):
        with pytest.raises(DatasetError):
            Scaling.fit(np.zeros((0, 3)))

    def test_scaling_file_roundtrip(self, tmp_path):
        data = np.random.default_rng(0).uniform(-5, 50, size=(20, 71))
        scaling = Scaling.fit(data)
        path = tmp_path / "scaling.txt"
        scaling.save(path)
        loaded = Scaling.load(path)
        assert loaded == scaling
        probe = data[3]
        assert np.allclose(loaded.transform(probe),
                           scaling.transform(probe))

    def test_corrupt_scaling_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1.0 2.0 3.0\n")
        with pytest.raises(DatasetError):
            Scaling.load(path)

    def test_empty_scaling_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(DatasetError):
            Scaling.load(path)


class TestLiblinearFormat:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        matrix = np.round(rng.uniform(0, 1, size=(15, NUM_FEATURES)), 4)
        matrix[matrix < 0.5] = 0.0  # sparsity
        labels = list(rng.integers(1, 100, size=15))
        path = tmp_path / "data.ll"
        write_liblinear(path, labels, matrix)
        got_labels, got = read_liblinear(path)
        assert got_labels == [int(x) for x in labels]
        assert np.allclose(got, matrix, atol=1e-4)

    def test_zeros_omitted(self, tmp_path):
        matrix = np.zeros((1, NUM_FEATURES))
        matrix[0, 9] = 0.5625
        path = tmp_path / "one.ll"
        write_liblinear(path, [7], matrix)
        line = path.read_text().strip()
        assert line == "7 10:0.5625"  # 1-based index, like Figure 4

    def test_label_range_enforced(self, tmp_path):
        path = tmp_path / "bad.ll"
        with pytest.raises(DatasetError, match="2\\^31"):
            write_liblinear(path, [0], np.zeros((1, NUM_FEATURES)))
        with pytest.raises(DatasetError):
            write_liblinear(path, [2**31], np.zeros((1, NUM_FEATURES)))

    def test_bad_component_index(self, tmp_path):
        path = tmp_path / "bad2.ll"
        path.write_text("1 999:0.5\n")
        with pytest.raises(DatasetError, match="component index"):
            read_liblinear(path)

    def test_bad_label(self, tmp_path):
        path = tmp_path / "bad3.ll"
        path.write_text("xyz 1:0.5\n")
        with pytest.raises(DatasetError, match="label"):
            read_liblinear(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.ll"
        path.write_text("")
        labels, matrix = read_liblinear(path)
        assert labels == [] and matrix.shape == (0, NUM_FEATURES)

    @settings(max_examples=15, deadline=None)
    @given(values=st.lists(
        st.floats(0, 1, allow_nan=False, width=32), min_size=3,
        max_size=8))
    def test_roundtrip_property(self, tmp_path_factory, values):
        matrix = np.zeros((1, NUM_FEATURES))
        for i, v in enumerate(values):
            matrix[0, i * 7] = round(v, 6)
        path = tmp_path_factory.mktemp("ll") / "p.ll"
        write_liblinear(path, [3], matrix)
        _labels, got = read_liblinear(path)
        assert np.allclose(got, matrix, atol=1e-5)
