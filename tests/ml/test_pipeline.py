"""Training pipeline, leave-one-out, model persistence, Table 4 stats."""

import numpy as np
import pytest

from repro.collect.records import ExperimentRecord, RecordSet
from repro.errors import TrainingError
from repro.features import NUM_FEATURES
from repro.jit.modifiers import Modifier
from repro.jit.plans import OptLevel
from repro.ml.model import LevelModel, ModelSet
from repro.ml.pipeline import (
    TrainingPipeline,
    leave_one_out_models,
    merge_record_sets,
    table4_statistics,
)


def synth_record_set(benchmark, seed, n=60):
    """Synthetic records where low-feature methods prefer modifier A
    and high-feature methods modifier B (a learnable pattern)."""
    rng = np.random.default_rng(seed)
    rs = RecordSet(benchmark=benchmark)
    for i in range(n):
        features = np.zeros(NUM_FEATURES)
        group = i % 2
        features[3] = 30 + group * 200 + rng.integers(0, 20)
        features[7] = 1 - group
        good_bits = 0b0011 if group == 0 else 0b1100
        for bits, running in ((good_bits, 500), (0, 900),
                              (0b111111, 1400)):
            rs.add(ExperimentRecord(
                signature=f"{benchmark}.m{i}(INT)INT",
                level=int(OptLevel.HOT), modifier_bits=bits,
                features=features.copy(), compile_cycles=400,
                running_cycles=running * 10, invocations=10))
    return rs


class TestTrainingPipeline:
    def test_trains_learnable_pattern(self):
        rs = synth_record_set("a", 0)
        pipeline = TrainingPipeline(levels=(OptLevel.HOT,), C=10)
        model_set = pipeline.train(rs, name="M")
        model = model_set.model_for(OptLevel.HOT)
        low = np.zeros(NUM_FEATURES)
        low[3], low[7] = 35, 1
        high = np.zeros(NUM_FEATURES)
        high[3], high[7] = 240, 0
        assert model.predict_modifier(low).bits == 0b0011
        assert model.predict_modifier(high).bits == 0b1100

    def test_empty_records_rejected(self):
        pipeline = TrainingPipeline(levels=(OptLevel.HOT,))
        with pytest.raises(TrainingError):
            pipeline.train(RecordSet(benchmark="none"), name="X")

    def test_levels_without_data_skipped(self):
        rs = synth_record_set("a", 0)
        pipeline = TrainingPipeline(
            levels=(OptLevel.COLD, OptLevel.HOT))
        model_set = pipeline.train(rs, name="M")
        assert model_set.model_for(OptLevel.COLD) is None
        assert model_set.model_for(OptLevel.HOT) is not None

    def test_training_seconds_recorded(self):
        rs = synth_record_set("a", 0)
        pipeline = TrainingPipeline(levels=(OptLevel.HOT,))
        pipeline.train(rs, name="M")
        assert pipeline.training_seconds[OptLevel.HOT] > 0


class TestLeaveOneOut:
    def test_five_models_each_excluding_one(self):
        sets = {f"b{i}": synth_record_set(f"b{i}", i, n=20)
                for i in range(5)}
        models = leave_one_out_models(sets, levels=(OptLevel.HOT,))
        assert set(models) == {"H1", "H2", "H3", "H4", "H5"}
        excluded = {ms.excluded for ms in models.values()}
        assert excluded == set(sets)
        for ms in models.values():
            assert ms.excluded not in ms.training_benchmarks
            assert len(ms.training_benchmarks) == 4


class TestModelPersistence:
    def test_modelset_roundtrip(self, tmp_path):
        rs = synth_record_set("a", 0)
        pipeline = TrainingPipeline(levels=(OptLevel.HOT,))
        model_set = pipeline.train(rs, name="M", excluded="a")
        model_set.save(tmp_path / "M")
        loaded = ModelSet.load(tmp_path / "M")
        assert loaded.name == "M"
        assert loaded.excluded == "a"
        probe = np.zeros(NUM_FEATURES)
        probe[3], probe[7] = 35, 1
        assert loaded.predict_modifier(OptLevel.HOT, probe) \
            == model_set.predict_modifier(OptLevel.HOT, probe)

    def test_missing_level_predicts_none(self):
        rs = synth_record_set("a", 0)
        pipeline = TrainingPipeline(levels=(OptLevel.HOT,))
        model_set = pipeline.train(rs, name="M")
        assert model_set.predict_modifier(
            OptLevel.SCORCHING, np.zeros(NUM_FEATURES)) is None

    def test_prediction_returns_modifier(self):
        rs = synth_record_set("a", 0)
        model_set = TrainingPipeline(levels=(OptLevel.HOT,)).train(
            rs, name="M")
        out = model_set.predict_modifier(OptLevel.HOT,
                                         np.zeros(NUM_FEATURES))
        assert isinstance(out, Modifier)


class TestTable4:
    def test_statistics_shape(self):
        sets = {f"b{i}": synth_record_set(f"b{i}", i, n=10)
                for i in range(3)}
        stats = table4_statistics(sets, levels=(OptLevel.HOT,))
        row = stats[OptLevel.HOT]
        assert row["merged_instances"] == 3 * 10 * 3
        assert row["training_instances"] <= row["merged_instances"]
        assert row["merged_ratio"] >= row["training_ratio"]
        assert row["training_feature_vectors"] \
            == row["merged_feature_vectors"]

    def test_merge_record_sets(self):
        sets = {"a": synth_record_set("a", 0, n=5),
                "b": synth_record_set("b", 1, n=5)}
        merged = merge_record_sets(sets)
        assert len(merged) == len(sets["a"]) + len(sets["b"])
