"""Ranking (Eq. 2), aggregation, selection strategies, label table."""

import numpy as np
import pytest

from repro.collect.records import ExperimentRecord
from repro.features import NUM_FEATURES
from repro.jit.control import ControlConfig
from repro.jit.plans import OptLevel
from repro.ml.ranking import (
    LabelTable,
    rank_records,
    ranking_value,
    trigger_for_record,
)


def rec(bits, running=1000, invocations=10, compile_cycles=500,
        level=OptLevel.HOT, fv_seed=0):
    features = np.zeros(NUM_FEATURES)
    features[0] = fv_seed  # distinct feature vectors via one component
    return ExperimentRecord(
        signature=f"T.m{fv_seed}(INT)INT", level=int(level),
        modifier_bits=bits, features=features,
        compile_cycles=compile_cycles, running_cycles=running,
        invocations=invocations)


class TestRankingValue:
    def test_equation_2(self):
        record = rec(1, running=1000, invocations=10,
                     compile_cycles=500)
        # V = R/I + C/T = 100 + 500/T
        value = ranking_value(record, trigger=50)
        assert value == pytest.approx(100 + 10)

    def test_zero_invocations_is_infinite(self):
        record = rec(1, invocations=0)
        assert ranking_value(record, 50) == float("inf")

    def test_trigger_depends_on_level_and_loops(self):
        config = ControlConfig()
        no_loop = rec(1, level=OptLevel.COLD)
        assert trigger_for_record(no_loop, config) \
            == config.trigger(OptLevel.COLD, 0)


class TestRanking:
    def test_best_strategy_keeps_one_per_vector(self):
        records = [rec(1, running=1000), rec(2, running=500),
                   rec(3, running=2000)]
        ranked = rank_records(records, OptLevel.HOT, strategy="best")
        assert len(ranked.instances) == 1
        assert ranked.instances[0].modifier_bits == 2

    def test_top_n_with_quality_floor(self):
        # best V=50; candidates within 95% of best (V <= ~52.6) only.
        records = [rec(1, running=500, invocations=10,
                       compile_cycles=0),
                   rec(2, running=510, invocations=10,
                       compile_cycles=0),
                   rec(3, running=2000, invocations=10,
                       compile_cycles=0)]
        ranked = rank_records(records, OptLevel.HOT, strategy="top_n",
                              top_n=3, quality_floor=0.95)
        bits = {i.modifier_bits for i in ranked.instances}
        assert bits == {1, 2}

    def test_top_n_caps_at_three(self):
        records = [rec(b, running=500 + b, invocations=10,
                       compile_cycles=0) for b in range(1, 8)]
        ranked = rank_records(records, OptLevel.HOT, strategy="top_n",
                              top_n=3, quality_floor=0.0)
        assert len(ranked.instances) == 3

    def test_top_percent(self):
        records = [rec(b, running=100 * b) for b in range(1, 11)]
        ranked = rank_records(records, OptLevel.HOT,
                              strategy="top_percent", top_percent=20)
        assert len(ranked.instances) == 2

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            rank_records([rec(1)], OptLevel.HOT, strategy="magic")

    def test_aggregation_by_feature_vector(self):
        records = [rec(1, fv_seed=0), rec(2, fv_seed=1),
                   rec(3, fv_seed=1, running=100)]
        ranked = rank_records(records, OptLevel.HOT, strategy="best")
        assert len(ranked.instances) == 2
        assert ranked.merged_feature_vectors == 2

    def test_level_filtering(self):
        records = [rec(1, level=OptLevel.COLD),
                   rec(2, level=OptLevel.HOT)]
        ranked = rank_records(records, OptLevel.COLD)
        assert len(ranked.instances) == 1
        assert ranked.merged_instances == 1

    def test_duplicate_modifiers_deduped_per_vector(self):
        records = [rec(1, running=500), rec(1, running=501)]
        ranked = rank_records(records, OptLevel.HOT, strategy="top_n",
                              quality_floor=0.0)
        assert len(ranked.instances) == 1

    def test_merged_statistics(self):
        records = [rec(b, fv_seed=b % 2) for b in range(6)]
        ranked = rank_records(records, OptLevel.HOT)
        assert ranked.merged_instances == 6
        assert ranked.merged_classes == 6
        assert ranked.merged_feature_vectors == 2


class TestLabelTable:
    def test_labels_start_at_one(self):
        table = LabelTable()
        assert table.label_for(0b1010) == 1
        assert table.label_for(0b0101) == 2

    def test_roundtrip(self):
        table = LabelTable()
        bits = [0, 5, 2**57, 123456]
        labels = [table.label_for(b) for b in bits]
        assert [table.bits_for(lab) for lab in labels] == bits

    def test_idempotent_assignment(self):
        table = LabelTable()
        assert table.label_for(7) == table.label_for(7)
        assert len(table) == 1

    def test_unknown_label_raises(self):
        table = LabelTable([1, 2])
        with pytest.raises(KeyError):
            table.bits_for(99)

    def test_labels_fit_liblinear_range(self):
        table = LabelTable(range(1000))
        assert 1 <= table.label_for(999) <= 2**31 - 1
