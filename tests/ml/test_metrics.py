"""Model-quality diagnostics."""

import numpy as np
import pytest

from repro.jit.plans import OptLevel
from repro.ml.metrics import (
    good_plan_rate,
    k_fold_cross_validation,
    label_accuracy,
)
from repro.ml.pipeline import TrainingPipeline
from repro.ml.ranking import rank_records

from tests.ml.test_pipeline import synth_record_set


@pytest.fixture(scope="module")
def trained():
    rs = synth_record_set("metrics", 0)
    pipeline = TrainingPipeline(levels=(OptLevel.HOT,))
    model_set = pipeline.train(rs, name="M")
    ranked = rank_records(rs.records, OptLevel.HOT)
    return rs, model_set.model_for(OptLevel.HOT), ranked


class TestLabelAccuracy:
    def test_high_on_learnable_data(self, trained):
        _rs, model, ranked = trained
        assert label_accuracy(model, ranked.instances) > 0.9

    def test_empty_instances(self, trained):
        _rs, model, _ranked = trained
        assert label_accuracy(model, []) == 0.0


class TestGoodPlanRate:
    def test_rate_and_coverage(self, trained):
        rs, model, _ranked = trained
        rate, coverage = good_plan_rate(model, rs.records,
                                        OptLevel.HOT)
        assert 0.9 <= rate <= 1.0
        assert 0.9 <= coverage <= 1.0

    def test_no_records(self, trained):
        _rs, model, _ranked = trained
        rate, coverage = good_plan_rate(model, [], OptLevel.HOT)
        assert rate == 0.0 and coverage == 0.0


class TestKFold:
    def test_folds_produced(self):
        rs = synth_record_set("kf", 2, n=40)
        accs = k_fold_cross_validation(rs.records, k=4)
        assert len(accs) == 4
        assert all(0.0 <= a <= 1.0 for a in accs)

    def test_learnable_pattern_cross_validates(self):
        rs = synth_record_set("kf2", 3, n=40)
        accs = k_fold_cross_validation(rs.records, k=4)
        # The group structure is visible in the features, so held-out
        # vectors should usually be classified correctly.
        assert np.mean(accs) > 0.6

    def test_k_clamped_to_vector_count(self):
        rs = synth_record_set("kf3", 4, n=3)
        accs = k_fold_cross_validation(rs.records, k=10)
        assert 1 <= len(accs) <= 6
