"""End-to-end integration: the paper's central claims on a live
pipeline (tiny scale).

These are behavioural tests of the whole stack -- collection, training,
learned compilation -- not of any single module.
"""

import pytest

from repro.experiments import EvaluationContext
from repro.experiments.measure import run_once
from repro.jit.plans import OptLevel
from repro.service.strategy import ModelStrategy


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    return EvaluationContext(
        preset="tiny",
        cache_dir=str(tmp_path_factory.mktemp("e2e-cache")))


@pytest.fixture(scope="module")
def models(ctx):
    return ctx.model_sets()


class TestCentralClaims:
    def test_learned_models_cut_compile_time(self, ctx, models):
        """Across the training benchmarks, learned plans must compile
        for less than the original plans in aggregate."""
        base_total = 0
        model_total = 0
        for name in ("mtrt", "raytrace", "db"):
            program = ctx.program("specjvm", name)
            base = run_once(program, None, iterations=1)
            learned = run_once(program, ModelStrategy(models["H1"]),
                               iterations=1)
            base_total += base.compile_cycles
            model_total += learned.compile_cycles
        assert model_total < base_total

    def test_results_identical_under_learned_plans(self, ctx, models):
        """Learned plans must never change program output."""
        for name in ("mtrt", "javac"):
            program = ctx.program("specjvm", name)
            base = run_once(program, None, iterations=1)
            learned = run_once(program, ModelStrategy(models["H3"]),
                               iterations=1)
            assert base.result_value == learned.result_value

    def test_predictions_are_nontrivial(self, ctx, models):
        """Models must actually disable transformations, not just echo
        the null modifier."""
        import numpy as np
        merged = []
        for rs in ctx.record_sets().values():
            merged.extend(rs.records)
        model = models["H2"].model_for(OptLevel.HOT)
        if model is None:
            pytest.skip("tiny run produced no hot data")
        disabled = [model.predict_modifier(np.array(r.features))
                    .count_disabled()
                    for r in merged[:30] if r.level == int(OptLevel.HOT)]
        if not disabled:
            pytest.skip("no hot records")
        assert max(disabled) > 0

    def test_scorching_stays_unmodelled(self, models):
        import numpy as np
        from repro.features import NUM_FEATURES
        for model_set in models.values():
            assert model_set.predict_modifier(
                OptLevel.SCORCHING, np.zeros(NUM_FEATURES)) is None
            assert model_set.predict_modifier(
                OptLevel.VERY_HOT, np.zeros(NUM_FEATURES)) is None


class TestVMSampling:
    def test_sampling_ticks_fire_on_long_loops(self):
        from repro.jvm.vm import VirtualMachine
        from tests.conftest import build_method, vm_with

        def body(a):
            a.iconst(0).store(1)
            top = a.label()
            a.load(1).load(0).cmp().ifge("end")
            a.inc(1, 1).goto(top)
            a.mark("end")
            a.load(1).retval()
        method = build_method(body, num_temps=1, name="spin")
        vm = vm_with(method)
        vm.sample_interval = 5_000
        vm._next_sample_at = 5_000
        vm.call(method.signature, 2_000)
        assert vm.stats["samples"] > 0

    def test_samples_reach_manager(self):
        from tests.conftest import build_method, vm_with

        hits = []

        class Probe:
            def on_attach(self, vm):
                pass

            def on_invoke(self, method, count):
                pass

            def on_return(self, method, compiled):
                pass

            def on_sample(self, method):
                hits.append(method.signature)

            def compiled_for(self, method, now):
                return None

        def body(a):
            a.iconst(0).store(1)
            top = a.label()
            a.load(1).load(0).cmp().ifge("end")
            a.inc(1, 1).goto(top)
            a.mark("end")
            a.load(1).retval()
        method = build_method(body, num_temps=1, name="spin2")
        vm = vm_with(method)
        vm.sample_interval = 5_000
        vm._next_sample_at = 5_000
        vm.attach_manager(Probe())
        vm.call(method.signature, 2_000)
        assert hits and hits[0] == method.signature
