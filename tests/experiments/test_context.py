"""The cached evaluation context (tiny preset end-to-end)."""

import os

import pytest

from repro.experiments.context import PRESETS, EvaluationContext
from repro.jit.plans import OptLevel


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    return EvaluationContext(preset="tiny", cache_dir=str(cache))


class TestPresets:
    def test_known_presets(self):
        assert {"tiny", "quick", "full"} <= set(PRESETS)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            EvaluationContext(preset="galactic")

    def test_full_is_heavier_than_quick(self):
        assert PRESETS["full"]["replications"] == 30  # the paper's 30
        assert PRESETS["full"]["max_iterations"] \
            > PRESETS["quick"]["max_iterations"]


class TestPipelineCaching:
    def test_record_sets_collected_and_cached(self, ctx):
        first = ctx.record_sets()
        assert set(first) == {"compress", "db", "mpegaudio", "mtrt",
                              "raytrace"}
        assert all(len(rs) > 0 for rs in first.values())
        # Archives must exist on disk now.
        archives = []
        for root, _dirs, files in os.walk(ctx.cache_dir):
            archives += [f for f in files if f.endswith(".trca")]
        assert len(archives) == 5

    def test_second_context_reads_cache(self, ctx):
        again = EvaluationContext(preset="tiny",
                                  cache_dir=ctx.cache_dir)
        sets = again.record_sets()
        first = ctx.record_sets()
        for name in first:
            assert len(sets[name]) == len(first[name])

    def test_model_sets_trained_and_cached(self, ctx):
        models = ctx.model_sets()
        assert set(models) == {"H1", "H2", "H3", "H4", "H5"}
        reloaded = EvaluationContext(
            preset="tiny", cache_dir=ctx.cache_dir).model_sets()
        assert set(reloaded) == set(models)
        for name in models:
            assert reloaded[name].excluded == models[name].excluded

    def test_table4_statistics(self, ctx):
        stats = ctx.table4()
        for level in (OptLevel.COLD, OptLevel.WARM, OptLevel.HOT):
            row = stats[level]
            assert row["merged_instances"] \
                >= row["training_instances"]

    def test_programs_cached_by_name(self, ctx):
        a = ctx.program("specjvm", "db")
        b = ctx.program("specjvm", "db")
        assert a is b
