"""Report rendering and feature analysis."""

import os

import numpy as np
import pytest

from repro.experiments.report import ascii_bar, ascii_figure, \
    build_report
from repro.features import FEATURE_NAMES
from repro.jit.plans import OptLevel
from repro.ml.analysis import (
    feature_importance,
    feature_report,
    invariant_features,
    top_features,
)
from repro.ml.pipeline import TrainingPipeline

from tests.ml.test_pipeline import synth_record_set


class TestAsciiRendering:
    def test_bar_contains_baseline_tick(self):
        bar = ascii_bar(1.05, 0.9, 1.2, baseline=1.0)
        assert "|" in bar or "#" in bar
        assert len(bar) == 41

    def test_bar_clamps_out_of_range(self):
        bar = ascii_bar(5.0, 0.9, 1.1)
        assert bar.rstrip().endswith("#")

    def test_figure_lists_every_row(self):
        rows = {"javac": {"H1": (1.02, 0.01), "H2": (0.98, 0.02)},
                "jess": {"H1": (1.10, 0.01)}}
        text = ascii_figure(rows, "Figure X")
        assert text.count("javac") == 2
        assert "jess" in text
        assert "Figure X" in text

    def test_empty_rows(self):
        assert "(no data)" in ascii_figure({}, "t")


class TestBuildReport:
    def test_assembles_saved_results(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "figure6.txt").write_text("FIGURE SIX BODY\n")
        (results / "custom.txt").write_text("CUSTOM BODY\n")
        report = build_report(str(tmp_path))
        assert "## figure6" in report
        assert "FIGURE SIX BODY" in report
        assert "## custom" in report

    def test_empty_cache(self, tmp_path):
        report = build_report(str(tmp_path))
        assert "no results found" in report

    def test_canonical_order(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "figure7.txt").write_text("x")
        (results / "table4.txt").write_text("x")
        report = build_report(str(tmp_path))
        assert report.index("## table4") < report.index("## figure7")


@pytest.fixture(scope="module")
def trained_for_analysis():
    rs = synth_record_set("fa", 0)
    model_set = TrainingPipeline(levels=(OptLevel.HOT,)).train(
        rs, name="A")
    return rs, model_set.model_for(OptLevel.HOT)


class TestFeatureAnalysis:
    def test_invariant_features_detected(self, trained_for_analysis):
        rs, _model = trained_for_analysis
        invariant = invariant_features(rs.records)
        # synth records only vary components 3 and 7
        assert FEATURE_NAMES[3] not in invariant
        assert FEATURE_NAMES[7] not in invariant
        assert len(invariant) == len(FEATURE_NAMES) - 2

    def test_importance_zero_for_invariant(self, trained_for_analysis):
        _rs, model = trained_for_analysis
        importance = feature_importance(model)
        assert importance[FEATURE_NAMES[0]] == 0.0
        assert importance[FEATURE_NAMES[3]] > 0.0

    def test_top_features_are_the_varying_ones(self,
                                               trained_for_analysis):
        _rs, model = trained_for_analysis
        names = [name for name, _v in top_features(model, 2)]
        assert set(names) == {FEATURE_NAMES[3], FEATURE_NAMES[7]}

    def test_report_renders(self, trained_for_analysis):
        rs, model = trained_for_analysis
        text = feature_report(rs.records, model)
        assert "invariant features" in text
        assert "top" in text and "#" in text

    def test_empty_records_all_invariant(self):
        assert len(invariant_features([])) == len(FEATURE_NAMES)


class TestCLI:
    def test_list_command(self, capsys):
        from repro.__main__ import main
        main(["list"])
        out = capsys.readouterr().out
        assert "compress" in out and "58 controllable" in out

    def test_run_command(self, capsys):
        from repro.__main__ import main
        main(["run", "db", "--iterations", "1"])
        out = capsys.readouterr().out
        assert "db: result" in out

    def test_unknown_benchmark(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["run", "nonesuch"])

    def test_report_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        from repro.__main__ import main
        main(["report", "--preset", "tiny"])
        out = capsys.readouterr().out
        assert "Regenerated evaluation" in out
