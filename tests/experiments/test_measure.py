"""Measurement methodology: summaries, relatives, replications."""

import numpy as np
import pytest

from repro.experiments.measure import (
    MeasurementConfig,
    measure,
    relative,
    run_once,
    summarize,
)
from repro.workloads import specjvm_program


class TestSummarize:
    def test_mean_and_ci(self):
        s = summarize([10.0, 12.0, 11.0, 13.0, 9.0])
        assert s.mean == pytest.approx(11.0)
        assert s.ci95 > 0
        assert s.low < s.mean < s.high
        assert s.n == 5

    def test_single_sample_no_ci(self):
        s = summarize([42.0])
        assert s.mean == 42.0 and s.ci95 == 0.0

    def test_ci_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(100, 5, size=5))
        large = summarize(rng.normal(100, 5, size=50))
        assert large.ci95 < small.ci95

    def test_t_quantile_matches_scipy(self):
        from scipy import stats
        data = [1.0, 2.0, 3.0, 4.0]
        s = summarize(data)
        sem = np.std(data, ddof=1) / 2
        assert s.ci95 == pytest.approx(stats.t.ppf(0.975, 3) * sem)


class TestRelative:
    def test_ratio_direction(self):
        base = summarize([100.0, 102.0, 98.0])
        fast = summarize([50.0, 51.0, 49.0])
        rel = relative(base, fast)
        assert rel.mean == pytest.approx(2.0, rel=0.05)

    def test_propagated_ci_positive(self):
        base = summarize([100.0, 110.0, 90.0])
        var = summarize([100.0, 105.0, 95.0])
        assert relative(base, var).ci95 > 0


class TestRunOnce:
    @pytest.fixture(scope="class")
    def program(self):
        return specjvm_program("db")

    def test_baseline_run(self, program):
        run = run_once(program, iterations=1)
        assert run.total_cycles > 0
        assert run.compilations >= 0

    def test_iterations_add_time_sublinearly(self, program):
        # The JIT warms up: extra iterations are cheaper than the first
        # but still add time.
        one = run_once(program, iterations=1)
        three = run_once(program, iterations=3)
        assert one.total_cycles < three.total_cycles \
            < 3 * one.total_cycles

    def test_noise_multiplies_time(self, program):
        quiet = run_once(program, iterations=1, noise=1.0)
        noisy = run_once(program, iterations=1, noise=1.05)
        assert noisy.total_cycles == pytest.approx(
            quiet.total_cycles * 1.05, rel=1e-6)

    def test_result_deterministic_across_noise(self, program):
        a = run_once(program, iterations=1, noise=1.0)
        b = run_once(program, iterations=1, noise=1.1)
        assert a.result_value == b.result_value


class TestMeasure:
    def test_replication_count(self):
        program = specjvm_program("db")
        config = MeasurementConfig(iterations=1, replications=3)
        time_s, compile_s, runs = measure(program, None, config)
        assert time_s.n == 3
        assert len(runs) == 3

    def test_deterministic_given_seed(self):
        program = specjvm_program("db")
        config = MeasurementConfig(iterations=1, replications=3,
                                   master_seed=77)
        a, _, _ = measure(program, None, config)
        b, _, _ = measure(program, None, config)
        assert a.samples == b.samples
