"""Evaluation methodology: leave-one-out assignment, relative metrics."""

import numpy as np
import pytest

from repro.experiments.evaluation import (
    evaluate_benchmark,
    format_results,
    geometric_mean_gain,
    models_for_benchmark,
)
from repro.jit.plans import OptLevel
from repro.ml.pipeline import TrainingPipeline
from repro.workloads.generator import generate_program
from repro.workloads.profiles import WorkloadProfile

from tests.ml.test_pipeline import synth_record_set


def model_sets():
    out = {}
    for k, excluded in enumerate(["compress", "db", "mpegaudio"],
                                 start=1):
        rs = synth_record_set(f"train{k}", k)
        out[f"H{k}"] = TrainingPipeline(levels=(OptLevel.HOT,)).train(
            rs, name=f"H{k}", excluded=excluded)
    return out


class TestModelAssignment:
    def test_training_benchmark_gets_single_model(self):
        models = models_for_benchmark("compress", model_sets())
        assert list(models) == ["H1"]

    def test_reserved_benchmark_gets_all_models(self):
        models = models_for_benchmark("javac", model_sets())
        assert len(models) == 3


class TestEvaluateBenchmark:
    @pytest.fixture(scope="class")
    def program(self):
        profile = WorkloadProfile(name="evalme", n_methods=8,
                                  loop_weight=0.7, phase_calls=3,
                                  sweep_repeats=2)
        return generate_program(profile, np.random.default_rng(0))

    def test_result_structure(self, program):
        result = evaluate_benchmark(program, model_sets(),
                                    iterations=1, replications=2)
        assert result.benchmark == "evalme"
        assert result.baseline_time.mean > 0
        assert set(result.models()) == {"H1", "H2", "H3"}
        for m in result.models():
            rel = result.relative_performance(m)
            assert rel.mean > 0
            cmp_rel = result.relative_compile_time(m)
            assert cmp_rel is None or cmp_rel.mean >= 0

    def test_formatting(self, program):
        result = evaluate_benchmark(program, model_sets(),
                                    iterations=1, replications=2)
        text = format_results({"evalme": result})
        assert "evalme" in text and "H1=" in text
        gain = geometric_mean_gain({"evalme": result})
        assert gain > 0
