"""The 71-dimension feature vector (§4.1)."""

import numpy as np
import pytest

from repro.features import FEATURE_NAMES, NUM_FEATURES, extract_features
from repro.features.vector import (
    MANY_ITERATION_THRESHOLD,
    OP_COUNTER_CAP,
    TYPE_COUNTER_CAP,
    feature_index,
)
from repro.jit.ir.ilgen import generate_il
from repro.jvm.bytecode import JType
from repro.jvm.classfile import Handler, MethodModifiers

from tests.conftest import build_method


def features_of(body_fn, **kwargs):
    method = build_method(body_fn, **kwargs)
    il, _ = generate_il(method)
    return extract_features(il)


def get(vec, name):
    return vec[feature_index(name)]


class TestLayout:
    def test_71_dimensions(self):
        assert NUM_FEATURES == 71
        assert len(FEATURE_NAMES) == 71

    def test_groups(self):
        # 4 counters + 15 attributes + 14 types + 38 operations
        assert FEATURE_NAMES[0] == "exception_handlers"
        assert FEATURE_NAMES[4] == "is_constructor"
        assert FEATURE_NAMES[19] == "type_byte"
        assert FEATURE_NAMES[33] == "op_add"
        assert len([n for n in FEATURE_NAMES
                    if n.startswith("type_")]) == 14
        ops = FEATURE_NAMES[33:]
        assert len(ops) == 38


class TestScalarCounters:
    def test_arguments_counted(self):
        vec = features_of(lambda a: a.load(0).load(1).add().retval(),
                          params=(JType.INT, JType.INT), num_temps=0)
        assert get(vec, "arguments") == 2

    def test_exception_handlers_counted(self):
        def body(a):
            start = a.here()
            a.new("app/E").athrow()
            handler = a.here()
            a.pop().iconst(0).retval()
            return [Handler(start, handler, handler, "app/E")]
        vec = features_of(body, num_temps=0)
        assert get(vec, "exception_handlers") == 1

    def test_tree_nodes_positive(self):
        vec = features_of(lambda a: a.load(0).retval(), num_temps=0)
        assert get(vec, "tree_nodes") >= 2


class TestAttributes:
    def test_modifier_attributes(self):
        mods = (MethodModifiers.PROTECTED | MethodModifiers.STATIC
                | MethodModifiers.FINAL | MethodModifiers.SYNCHRONIZED
                | MethodModifiers.STRICTFP)
        vec = features_of(lambda a: a.load(0).retval(), num_temps=0,
                          modifiers=mods)
        assert get(vec, "is_protected") == 1
        assert get(vec, "is_static") == 1
        assert get(vec, "is_final") == 1
        assert get(vec, "is_synchronized") == 1
        assert get(vec, "strict_floating_point") == 1
        assert get(vec, "is_public") == 0

    def test_loop_attributes(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        vec = extract_features(il)
        assert get(vec, "may_have_loops") == 1
        # bound is the argument: unknown trip count
        assert get(vec, "may_have_many_iteration_loops") == 1
        assert get(vec, "many_iteration_loops") == 0

    def test_many_iteration_constant_bound(self):
        def body(a):
            a.iconst(0).store(1)
            top = a.label()
            a.load(1).iconst(MANY_ITERATION_THRESHOLD + 10).cmp()
            a.ifge("end")
            a.inc(1, 1).goto(top)
            a.mark("end")
            a.load(1).retval()
        vec = features_of(body, num_temps=1)
        assert get(vec, "many_iteration_loops") == 1

    def test_no_loops_method(self):
        vec = features_of(lambda a: a.load(0).retval(), num_temps=0)
        assert get(vec, "may_have_loops") == 0
        assert get(vec, "may_have_many_iteration_loops") == 0

    def test_allocation_attribute(self):
        vec = features_of(
            lambda a: a.new("C").instanceof("C").retval(), num_temps=1)
        assert get(vec, "allocates_dynamic_memory") == 1

    def test_bigdecimal_attribute(self):
        def body(a):
            a.load(0).cast(JType.PACKED)
            a.load(0).cast(JType.PACKED)
            a.call("java/math/BigDecimal.add", 2)
            a.cast(JType.INT).retval()
        vec = features_of(body, num_temps=1)
        assert get(vec, "uses_bigdecimal") == 1

    def test_unsafe_attribute(self):
        def body(a):
            a.load(0).call("sun/misc/Unsafe.getInt", 1).retval()
        vec = features_of(body, num_temps=1)
        assert get(vec, "unsafe_symbols") == 1

    def test_fp_attribute(self):
        vec = features_of(
            lambda a: a.load(0).retval(), params=(JType.DOUBLE,),
            ret=JType.DOUBLE, num_temps=0)
        assert get(vec, "uses_floating_point") == 1

    def test_virtual_overridden_from_method_flag(self):
        method = build_method(lambda a: a.load(0).retval(),
                              num_temps=0)
        method.virtual_overridden = True
        il, _ = generate_il(method)
        vec = extract_features(il)
        assert get(vec, "virtual_method_overridden") == 1


class TestDistributions:
    def test_alu_operations_counted(self):
        def body(a):
            a.load(0).iconst(1).add()
            a.load(0).iconst(2).mul()
            a.sub().retval()
        vec = features_of(body, num_temps=0)
        assert get(vec, "op_add") == 1
        assert get(vec, "op_mul") == 1
        assert get(vec, "op_sub") == 1

    def test_shift_coalesced(self):
        def body(a):
            a.load(0).iconst(1).shl().iconst(2).shr().retval()
        vec = features_of(body, num_temps=0)
        assert get(vec, "op_shift") == 2

    def test_cast_counted_by_target_type(self):
        def body(a):
            a.load(0).cast(JType.DOUBLE).cast(JType.INT).retval()
        vec = features_of(body, num_temps=0)
        assert get(vec, "cast_double") == 1
        assert get(vec, "cast_int") == 1

    def test_checkcast_counter(self):
        def body(a):
            a.new("C").checkcast("C").instanceof("C").retval()
        vec = features_of(body, num_temps=1)
        assert get(vec, "cast_check") == 1
        assert get(vec, "op_instanceof") == 1

    def test_load_store_family(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).load(0).putfield("f")
            a.load(1).getfield("f").retval()
        vec = features_of(body, num_temps=1)
        assert get(vec, "op_store") >= 2  # store + putfield
        assert get(vec, "op_load") >= 3   # loads + getfield
        assert get(vec, "op_loadconst") >= 0

    def test_synchronization_counter(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).monitorenter()
            a.load(1).monitorexit()
            a.iconst(0).retval()
        vec = features_of(body, num_temps=1)
        assert get(vec, "op_synchronization") == 2

    def test_throw_and_branch_counters(self):
        def body(a):
            a.load(0).ifle("out")
            a.new("app/E").athrow()
            a.mark("out")
            a.iconst(0).retval()
        vec = features_of(body, num_temps=1)
        assert get(vec, "op_throw") == 1
        assert get(vec, "op_branch") >= 1

    def test_array_ops_counter(self):
        def body(a):
            a.iconst(3).newarray(JType.INT).store(1)
            a.load(1).arraylength().retval()
        vec = features_of(body, num_temps=1)
        assert get(vec, "op_newarray") == 1
        assert get(vec, "op_arrayops") >= 1

    def test_type_distribution(self):
        def body(a):
            a.load(0).cast(JType.DOUBLE).store(1)
            a.load(1).retval()
        vec = features_of(body, ret=JType.DOUBLE, num_temps=1)
        assert get(vec, "type_double") >= 2
        assert get(vec, "type_int") >= 1

    def test_mixed_type_counter(self):
        # add(int, double-cast) has uniform types after promotion, but
        # cmp of int against double child types differ
        def body(a):
            a.load(0).load(1).cmp().retval()
        vec = features_of(body, params=(JType.INT, JType.DOUBLE),
                          num_temps=0)
        assert get(vec, "type_mixed") >= 1


class TestSaturation:
    def test_op_counter_saturates_at_255(self):
        def body(a):
            a.iconst(0)
            for _ in range(300):
                a.iconst(1).add()
            a.retval()
        vec = features_of(body, num_temps=0)
        assert get(vec, "op_add") == OP_COUNTER_CAP

    def test_type_counter_cap_is_16bit(self):
        assert TYPE_COUNTER_CAP == 0xFFFF
        assert OP_COUNTER_CAP == 0xFF


class TestDeterminism:
    def test_same_method_same_vector(self, sum_to_method):
        il1, _ = generate_il(sum_to_method)
        il2, _ = generate_il(sum_to_method)
        assert np.array_equal(extract_features(il1),
                              extract_features(il2))
