"""The compiler <-> model service: protocol, endpoints, strategies."""

import io
import os

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.features import NUM_FEATURES
from repro.jit.modifiers import Modifier
from repro.jit.plans import OptLevel
from repro.ml.pipeline import TrainingPipeline
from repro.service import protocol as P
from repro.service.client import ModelClient, connected_pair
from repro.service.strategy import ModelStrategy, ServiceStrategy

from tests.ml.test_pipeline import synth_record_set


@pytest.fixture(scope="module")
def model_set():
    rs = synth_record_set("svc", 0)
    return TrainingPipeline(levels=(OptLevel.HOT,)).train(rs, name="S")


def probe_features(group=0):
    f = np.zeros(NUM_FEATURES)
    f[3] = 35 if group == 0 else 240
    f[7] = 1 - group
    return f


class TestProtocolFraming:
    def test_roundtrip_through_buffer(self):
        buffer = io.BytesIO()
        P.write_message(buffer.write, P.MSG_PREDICT,
                        P.encode_predict(2, probe_features()))
        buffer.seek(0)
        kind, payload = P.read_message(buffer.read)
        assert kind == P.MSG_PREDICT
        level, features = P.decode_predict(payload)
        assert level == 2
        assert features[3] == 35

    def test_short_read_raises(self):
        buffer = io.BytesIO(b"\x01\x02")
        with pytest.raises(ProtocolError, match="closed"):
            P.read_message(buffer.read)

    def test_oversized_frame_rejected(self):
        buffer = io.BytesIO()
        import struct
        buffer.write(struct.pack("<IB", 1 << 21, P.MSG_PING))
        buffer.seek(0)
        with pytest.raises(ProtocolError, match="oversized"):
            P.read_message(buffer.read)

    def test_predict_payload_length_checked(self):
        with pytest.raises(ProtocolError):
            P.decode_predict(b"\x00" * 10)
        with pytest.raises(ProtocolError):
            P.encode_predict(0, [1.0] * 5)

    def test_modifier_payload(self):
        assert P.decode_modifier(P.encode_modifier(12345)) == 12345
        with pytest.raises(ProtocolError):
            P.decode_modifier(b"\x00")


class TestServiceEndpoints:
    def test_ping(self, model_set):
        client, _server, _t = connected_pair(model_set)
        try:
            assert client.ping()
        finally:
            client.shutdown()
            client.close()

    def test_predict_known_level(self, model_set):
        client, server, _t = connected_pair(model_set)
        try:
            modifier = client.predict(int(OptLevel.HOT),
                                      probe_features(0))
            assert isinstance(modifier, Modifier)
            assert modifier.bits == 0b0011
            assert server.requests_served == 1
        finally:
            client.shutdown()
            client.close()

    def test_predict_unmodelled_level_returns_none(self, model_set):
        client, _server, _t = connected_pair(model_set)
        try:
            out = client.predict(int(OptLevel.SCORCHING),
                                 probe_features())
            assert out is None
        finally:
            client.shutdown()
            client.close()

    def test_model_digest_round_trip(self, model_set):
        """The cache-keying digest crosses the wire: the client-side
        answer matches the in-process model set's own digest."""
        client, _server, _t = connected_pair(model_set)
        try:
            assert client.model_digest() == model_set.digest()
        finally:
            client.shutdown()
            client.close()

    def test_service_strategy_caches_the_digest(self, model_set):
        client, server, _t = connected_pair(model_set)
        try:
            strategy = ServiceStrategy(client)
            first = strategy.model_digest()
            assert first == model_set.digest()
            served = server.requests_served
            assert strategy.model_digest() == first  # no second query
            assert server.requests_served == served
        finally:
            client.shutdown()
            client.close()

    def test_shutdown_stops_server(self, model_set):
        client, _server, thread = connected_pair(model_set)
        client.shutdown()
        thread.join(timeout=5)
        assert not thread.is_alive()
        client.close()

    def test_model_swap_without_client_change(self, model_set):
        """The paper's headline property: swap the model, keep the
        compiler-side client untouched."""
        rs = synth_record_set("other", 3)
        other = TrainingPipeline(levels=(OptLevel.HOT,)).train(
            rs, name="other")
        for ms in (model_set, other):
            client, _server, _t = connected_pair(ms)
            try:
                out = client.predict(int(OptLevel.HOT),
                                     probe_features(0))
                assert isinstance(out, Modifier)
            finally:
                client.shutdown()
                client.close()


@pytest.mark.skipif(not hasattr(os, "mkfifo"),
                    reason="named pipes unsupported")
class TestNamedPipes:
    def test_fifo_rendezvous(self, model_set, tmp_path):
        import threading
        from repro.service.server import make_fifo_pair, \
            serve_over_fifos
        req, resp = make_fifo_pair(str(tmp_path))
        thread = threading.Thread(
            target=serve_over_fifos, args=(model_set, req, resp),
            daemon=True)
        thread.start()
        client = ModelClient.connect_fifos(req, resp)
        try:
            assert client.ping()
            modifier = client.predict(int(OptLevel.HOT),
                                      probe_features(1))
            assert modifier.bits == 0b1100
        finally:
            client.shutdown()
            client.close()
        thread.join(timeout=5)
        assert not thread.is_alive()


class TestStrategies:
    def test_model_strategy(self, model_set):
        strategy = ModelStrategy(model_set)
        out = strategy.choose_modifier(None, OptLevel.HOT,
                                       probe_features(0))
        assert out.bits == 0b0011
        assert strategy.predictions == 1

    def test_model_strategy_unmodelled_level(self, model_set):
        strategy = ModelStrategy(model_set)
        assert strategy.choose_modifier(
            None, OptLevel.SCORCHING, probe_features()) is None

    def test_service_strategy(self, model_set):
        client, _server, _t = connected_pair(model_set)
        try:
            strategy = ServiceStrategy(client)
            out = strategy.choose_modifier(None, OptLevel.HOT,
                                           probe_features(1))
            assert out.bits == 0b1100
        finally:
            client.shutdown()
            client.close()

    def test_strategies_agree(self, model_set):
        in_proc = ModelStrategy(model_set)
        client, _server, _t = connected_pair(model_set)
        try:
            via_pipe = ServiceStrategy(client)
            for group in (0, 1):
                f = probe_features(group)
                assert in_proc.choose_modifier(None, OptLevel.HOT, f) \
                    == via_pipe.choose_modifier(None, OptLevel.HOT, f)
        finally:
            client.shutdown()
            client.close()
