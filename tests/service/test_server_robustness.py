"""Regression: a malformed frame must not kill the serve loop.

``ModelServer.serve_forever`` used to raise ``ProtocolError`` on an
unknown message kind, silently killing the daemon serve thread and
leaving the compiler-side client hanging forever on its response read.
The server now answers with a ``MSG_ERROR`` rejection frame and keeps
serving.
"""

import numpy as np
import pytest

from repro.features import NUM_FEATURES
from repro.jit.plans import OptLevel
from repro.ml.pipeline import TrainingPipeline
from repro.service import protocol as P
from repro.service.client import connected_pair

from tests.ml.test_pipeline import synth_record_set


@pytest.fixture(scope="module")
def model_set():
    rs = synth_record_set("robust", 0)
    return TrainingPipeline(levels=(OptLevel.HOT,)).train(rs, name="R")


def test_unknown_kind_gets_error_reply_and_server_survives(model_set):
    client, server, thread = connected_pair(model_set)
    P.write_message(client._write, 250)  # no such message kind
    kind, payload = P.read_message(client._read)
    assert kind == P.MSG_ERROR
    assert payload == bytes([250])
    assert server.rejected_frames == 1

    # The serve loop is still alive and fully functional afterwards.
    assert client.ping()
    modifier = client.predict(
        int(OptLevel.HOT), np.zeros(NUM_FEATURES))
    assert modifier is None or modifier.bits >= 0
    client.shutdown()
    thread.join(timeout=5)
    assert not thread.is_alive()


def test_malformed_predict_payload_rejected_not_fatal(model_set):
    client, server, thread = connected_pair(model_set)
    # A PREDICT frame with a wrong-sized payload.
    P.write_message(client._write, P.MSG_PREDICT, b"\x01\x02\x03")
    kind, payload = P.read_message(client._read)
    assert kind == P.MSG_ERROR
    assert payload == bytes([P.MSG_PREDICT])
    assert server.rejected_frames == 1
    assert server.requests_served == 0

    assert client.ping()
    client.shutdown()
    thread.join(timeout=5)
    assert not thread.is_alive()


def test_several_bad_frames_interleaved_with_good_ones(model_set):
    client, server, thread = connected_pair(model_set)
    for bogus in (0, 99, 200):
        P.write_message(client._write, bogus)
        kind, _ = P.read_message(client._read)
        assert kind == P.MSG_ERROR
        assert client.ping()
    assert server.rejected_frames == 3
    client.shutdown()
    thread.join(timeout=5)
    assert not thread.is_alive()
