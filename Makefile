# Convenience targets for the CGO-2011 reproduction.

PY ?= python

.PHONY: install test bench bench-full examples report clean-cache

install:
	pip install -e . || $(PY) setup.py develop

test:
	$(PY) -m pytest tests/

test-fast:
	$(PY) -m pytest tests/ -m "not slow" -x -q

bench:            ## regenerate Table 4 + Figures 6-13 (+ ablations)
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-full:       ## the paper's 30-replication methodology (slow)
	REPRO_PROFILE=full $(PY) -m pytest benchmarks/ --benchmark-only

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/explore_compiler.py
	REPRO_PROFILE=tiny $(PY) examples/train_and_evaluate.py
	REPRO_PROFILE=tiny $(PY) examples/inspect_model.py
	$(PY) examples/model_service.py

report:           ## consolidate saved benchmark outputs into markdown
	$(PY) -m repro report

clean-cache:
	rm -rf .repro_cache
